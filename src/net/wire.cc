#include "net/wire.h"

#include <cstring>

namespace rdfc {
namespace net {

namespace {

void AppendU8(std::uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void AppendU32(std::uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (i * 8)) & 0xff));
  }
}

void AppendU64(std::uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (i * 8)) & 0xff));
  }
}

void AppendF64(double v, std::string* out) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(bits, out);
}

/// Bounds-checked little-endian reader over a frame payload.  Every Read*
/// fails (and poisons the cursor) instead of running past the end, so torn
/// or malicious frames decode to an error, never to garbage.
class Cursor {
 public:
  explicit Cursor(std::string_view bytes) : bytes_(bytes) {}

  bool ReadU8(std::uint8_t* v) {
    if (!Ensure(1)) return false;
    *v = static_cast<std::uint8_t>(bytes_[pos_++]);
    return true;
  }

  bool ReadU32(std::uint32_t* v) {
    if (!Ensure(4)) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<std::uint32_t>(
                static_cast<std::uint8_t>(bytes_[pos_ + i]))
            << (i * 8);
    }
    pos_ += 4;
    return true;
  }

  bool ReadU64(std::uint64_t* v) {
    if (!Ensure(8)) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<std::uint64_t>(
                static_cast<std::uint8_t>(bytes_[pos_ + i]))
            << (i * 8);
    }
    pos_ += 8;
    return true;
  }

  bool ReadF64(double* v) {
    std::uint64_t bits = 0;
    if (!ReadU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  /// String prefixed by its u32 byte length.
  bool ReadString(std::string* v) {
    std::uint32_t len = 0;
    if (!ReadU32(&len)) return false;
    if (!Ensure(len)) return false;
    v->assign(bytes_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  /// u64 vector prefixed by its u32 element count.
  bool ReadU64Vector(std::vector<std::uint64_t>* v) {
    std::uint32_t count = 0;
    if (!ReadU32(&count)) return false;
    // Each element needs 8 payload bytes, so `count` is implicitly bounded
    // by the frame size — no allocation beyond what the peer actually sent.
    if (!Ensure(static_cast<std::size_t>(count) * 8)) return false;
    v->clear();
    v->reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      std::uint64_t e = 0;
      if (!ReadU64(&e)) return false;
      v->push_back(e);
    }
    return true;
  }

  bool exhausted() const { return ok_ && pos_ == bytes_.size(); }
  bool ok() const { return ok_; }

 private:
  bool Ensure(std::size_t n) {
    if (!ok_ || bytes_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Fills in the length prefix reserved at `frame_start` once the payload is
/// fully appended.
void PatchFrameLength(std::size_t frame_start, std::string* out) {
  const std::size_t payload = out->size() - frame_start - kFramePrefixBytes;
  for (int i = 0; i < 4; ++i) {
    (*out)[frame_start + i] =
        static_cast<char>((payload >> (i * 8)) & 0xff);
  }
}

}  // namespace

const char* WireStatusName(WireStatus status) {
  switch (status) {
    case WireStatus::kOk:
      return "OK";
    case WireStatus::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case WireStatus::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case WireStatus::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case WireStatus::kQuarantined:
      return "QUARANTINED";
    case WireStatus::kShuttingDown:
      return "SHUTTING_DOWN";
    case WireStatus::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

void EncodeRequest(const WireRequest& request, std::string* out) {
  const std::size_t frame_start = out->size();
  out->append(kFramePrefixBytes, '\0');
  AppendU8(kWireVersion, out);
  AppendU8(static_cast<std::uint8_t>(request.opcode), out);
  AppendU64(request.id, out);
  AppendU32(request.deadline_ms, out);
  AppendU32(request.simulated_io_micros, out);
  AppendU32(static_cast<std::uint32_t>(request.query.size()), out);
  out->append(request.query);
  PatchFrameLength(frame_start, out);
}

void EncodeResponse(const WireResponse& response, std::string* out) {
  const std::size_t frame_start = out->size();
  out->append(kFramePrefixBytes, '\0');
  AppendU8(kWireVersion, out);
  AppendU8(static_cast<std::uint8_t>(response.status), out);
  std::uint8_t flags = 0;
  if (response.degraded) flags |= 1;
  if (response.quarantined) flags |= 2;
  AppendU8(flags, out);
  AppendU64(response.id, out);
  AppendU64(response.snapshot_version, out);
  AppendU32(response.candidates, out);
  AppendU32(response.np_checks, out);
  AppendF64(response.server_micros, out);
  AppendU32(static_cast<std::uint32_t>(response.containing_views.size()), out);
  for (std::uint64_t v : response.containing_views) AppendU64(v, out);
  AppendU32(static_cast<std::uint32_t>(response.unverified_views.size()), out);
  for (std::uint64_t v : response.unverified_views) AppendU64(v, out);
  AppendU32(static_cast<std::uint32_t>(response.payload.size()), out);
  out->append(response.payload);
  PatchFrameLength(frame_start, out);
}

util::Status DecodeRequest(std::string_view payload, WireRequest* out) {
  Cursor c(payload);
  std::uint8_t version = 0;
  std::uint8_t opcode = 0;
  if (!c.ReadU8(&version) || !c.ReadU8(&opcode) || !c.ReadU64(&out->id) ||
      !c.ReadU32(&out->deadline_ms) || !c.ReadU32(&out->simulated_io_micros) ||
      !c.ReadString(&out->query)) {
    return util::Status::ParseError("truncated request frame");
  }
  if (version != kWireVersion) {
    return util::Status::ParseError("unsupported wire version");
  }
  if (opcode < static_cast<std::uint8_t>(Opcode::kProbe) ||
      opcode > static_cast<std::uint8_t>(Opcode::kHealth)) {
    return util::Status::ParseError("unknown opcode");
  }
  out->opcode = static_cast<Opcode>(opcode);
  if (!c.exhausted()) {
    return util::Status::ParseError("trailing bytes after request frame");
  }
  return util::Status::OK();
}

util::Status DecodeResponse(std::string_view payload, WireResponse* out) {
  Cursor c(payload);
  std::uint8_t version = 0;
  std::uint8_t status = 0;
  std::uint8_t flags = 0;
  if (!c.ReadU8(&version) || !c.ReadU8(&status) || !c.ReadU8(&flags) ||
      !c.ReadU64(&out->id) || !c.ReadU64(&out->snapshot_version) ||
      !c.ReadU32(&out->candidates) || !c.ReadU32(&out->np_checks) ||
      !c.ReadF64(&out->server_micros) ||
      !c.ReadU64Vector(&out->containing_views) ||
      !c.ReadU64Vector(&out->unverified_views) ||
      !c.ReadString(&out->payload)) {
    return util::Status::ParseError("truncated response frame");
  }
  if (version != kWireVersion) {
    return util::Status::ParseError("unsupported wire version");
  }
  if (status > static_cast<std::uint8_t>(WireStatus::kInternal)) {
    return util::Status::ParseError("unknown wire status");
  }
  out->status = static_cast<WireStatus>(status);
  out->degraded = (flags & 1) != 0;
  out->quarantined = (flags & 2) != 0;
  if (!c.exhausted()) {
    return util::Status::ParseError("trailing bytes after response frame");
  }
  return util::Status::OK();
}

std::uint32_t PeekFrameLength(std::string_view bytes) {
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[i]))
           << (i * 8);
  }
  return len;
}

}  // namespace net
}  // namespace rdfc
