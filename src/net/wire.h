#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace rdfc {
namespace net {

/// Framed-TCP wire protocol of the network front end (DESIGN.md "Network
/// front end").  Every message is one frame: a little-endian u32 payload
/// length followed by that many payload bytes.  Payloads are compact binary
/// (fixed-width little-endian integers, length-prefixed strings) so the
/// server never heap-parses under load; the stats payload carries JSON as an
/// opaque byte string.
///
/// The frame length prefix deliberately excludes itself: a 12-byte payload
/// travels as 16 bytes on the wire.  Frames above the server's configured
/// maximum are a protocol error and close the offending connection.

inline constexpr std::uint8_t kWireVersion = 1;
/// Bytes of the frame length prefix.
inline constexpr std::size_t kFramePrefixBytes = 4;

enum class Opcode : std::uint8_t {
  kProbe = 1,     // containment probe (query text + deadline)
  kStats = 2,     // metrics snapshot as JSON in the response payload
  kPing = 3,      // liveness no-op
  kShutdown = 4,  // ask the server to drain and exit (if permitted)
  /// Liveness/readiness split (DESIGN.md "Durability"): answered directly by
  /// the I/O thread like kPing — it never queues behind recovery or probe
  /// work, so a response proves the process is *live* — while the JSON
  /// payload (`ready`, `recovering`, journal replay counters) reports
  /// whether the service is *ready* to serve current answers.
  kHealth = 5,
};

/// Machine-readable response statuses.  Service outcomes map onto these
/// 1:1 — shedding, deadline misses, and quarantine rejections are distinct
/// codes a client can branch on, not strings to grep out of a CLI.
enum class WireStatus : std::uint8_t {
  kOk = 0,
  /// The per-request deadline passed before the probe started (the degraded
  /// mid-probe-expiry case stays kOk with the degraded flag set — the answer
  /// is sound, just possibly incomplete).
  kDeadlineExceeded = 1,
  /// Shed at admission: the bounded queue was full.
  kResourceExhausted = 2,
  /// Unparseable query, unknown opcode, or a forbidden operation.
  kInvalidArgument = 3,
  /// Short-circuited by the quarantine circuit breaker.
  kQuarantined = 4,
  /// The server is draining and no longer accepts probes.
  kShuttingDown = 5,
  kInternal = 6,
};

const char* WireStatusName(WireStatus status);

struct WireRequest {
  Opcode opcode = Opcode::kProbe;
  /// Client-chosen correlation id, echoed verbatim in the response.
  /// Responses to pipelined probes come back in submission order per
  /// connection, but the id makes clients robust to their own bookkeeping.
  std::uint64_t id = 0;
  /// Relative deadline in milliseconds, anchored at server receipt (0 =
  /// none).  Translated into the ProbeRequest steady-clock deadline, so it
  /// bounds queue wait AND probe compute via the ProbeBudget.
  std::uint32_t deadline_ms = 0;
  /// Simulated downstream work (ProbeRequest::simulated_io_micros): load
  /// generators use it to hold workers busy deterministically.
  std::uint32_t simulated_io_micros = 0;
  /// SPARQL text for kProbe; ignored for other opcodes.
  std::string query;
};

struct WireResponse {
  WireStatus status = WireStatus::kOk;
  bool degraded = false;
  bool quarantined = false;
  std::uint64_t id = 0;
  std::uint64_t snapshot_version = 0;
  std::uint32_t candidates = 0;
  std::uint32_t np_checks = 0;
  /// Admission-to-response time measured by the server.
  double server_micros = 0.0;
  std::vector<std::uint64_t> containing_views;
  std::vector<std::uint64_t> unverified_views;
  /// Opcode-dependent extra bytes: stats JSON for kStats, human-readable
  /// detail for error statuses, empty otherwise.
  std::string payload;
};

/// Appends one complete frame (length prefix + encoded payload) to `out`.
void EncodeRequest(const WireRequest& request, std::string* out);
void EncodeResponse(const WireResponse& response, std::string* out);

/// Decodes a frame payload (WITHOUT the length prefix).  Every length field
/// is bounds-checked against the remaining payload bytes; failure means the
/// peer is broken and the connection should be closed.
[[nodiscard]] util::Status DecodeRequest(std::string_view payload,
                                         WireRequest* out);
[[nodiscard]] util::Status DecodeResponse(std::string_view payload,
                                          WireResponse* out);

/// Reads the u32 length prefix from the first kFramePrefixBytes of `bytes`
/// (which must hold at least that many).
std::uint32_t PeekFrameLength(std::string_view bytes);

}  // namespace net
}  // namespace rdfc
