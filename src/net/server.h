#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/wire.h"
#include "service/containment_service.h"
#include "util/macros.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace rdfc {
namespace net {

struct ServerOptions {
  /// Loopback by default: the front end has no auth layer yet, so binding
  /// wider than 127.0.0.1 is an explicit operator decision.
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral; the bound port is reported by NetServer::port().
  std::uint16_t port = 0;
  int listen_backlog = 64;
  std::size_t max_connections = 128;
  /// Frames longer than this are a protocol error: the offending connection
  /// is closed (alone), nothing is buffered.
  std::uint32_t max_frame_bytes = 1u << 20;  // 1 MiB
  /// Anchor-signature batching window: probes arriving within this many
  /// microseconds that share an anchor signature are admitted as one
  /// SubmitBatch group (one queue slot, one pinned snapshot, intra-group
  /// dedup).  0 disables accumulation — every probe is its own group.
  double batch_window_micros = 200.0;
  /// A signature group is flushed early once it holds this many requests.
  std::size_t max_batch = 32;
  /// Honour Opcode::kShutdown from clients (loopback tooling).  When false
  /// the opcode gets INVALID_ARGUMENT and only Shutdown() stops the server.
  bool allow_remote_shutdown = true;
};

/// Framed-TCP front end for ContainmentService (DESIGN.md "Network front
/// end").
///
/// Threading: ONE I/O thread runs the accept + poll loop — connections are
/// nonblocking and multiplexed, never one-thread-per-connection.  Probe work
/// happens on the service's worker pool; completed responses come back to
/// the I/O thread through a completion queue plus self-pipe wakeup, so
/// socket writes (like all socket syscalls in this codebase) stay inside
/// src/net/ on the I/O thread.
///
/// Shutdown drains: stop accepting, flush pending batch groups, wait for
/// in-flight probes, write out every buffered response, then close.
class NetServer {
 public:
  /// `service` must outlive the server.
  NetServer(service::ContainmentService* service, const ServerOptions& options);
  ~NetServer();  // Shutdown()
  RDFC_DISALLOW_COPY_AND_ASSIGN(NetServer);

  /// Binds, listens, and starts the I/O loop.  On OK, port() is the bound
  /// port (resolved when options.port was 0).
  [[nodiscard]] util::Status Start();

  /// Initiates drain and joins the I/O thread.  Idempotent.
  void Shutdown();

  std::uint16_t port() const { return port_; }
  /// True once a drain has begun (Shutdown() or a remote shutdown request).
  bool shutting_down() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }
  /// True once the I/O loop has fully drained and exited.
  bool stopped() const { return stopped_.load(std::memory_order_acquire); }

 private:
  struct Connection;
  struct PendingProbe;
  struct Group;
  struct Completion;

  void Loop();
  void HandleFrame(std::uint64_t conn_id, std::string_view payload);
  void HandleProbe(std::uint64_t conn_id, WireRequest request);
  void FlushGroup(std::uint64_t signature);
  void FlushDueGroups(bool flush_all);
  /// Microseconds until the oldest group's window expires (-1 = no groups).
  double NextFlushDueMicros() const;
  void RespondNow(std::uint64_t conn_id, const WireResponse& response);
  void DrainCompletions();
  void CloseConnection(std::uint64_t conn_id, bool protocol_error);
  void Wake();

  service::ContainmentService* const service_;
  service::ServiceMetrics* const metrics_;
  const ServerOptions options_;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  std::uint16_t port_ = 0;

  // --- I/O-thread-only state (no locks needed) ---
  std::uint64_t next_conn_id_ = 1;
  std::unordered_map<std::uint64_t, Connection> connections_;
  /// Anchor signature -> accumulating group.
  std::unordered_map<std::uint64_t, Group> groups_;
  /// Requests admitted to the service whose responses have not yet been
  /// handed back to the I/O thread.
  std::size_t in_flight_ = 0;

  // --- Cross-thread state ---
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> stopped_{false};
  util::Mutex completion_mu_;
  std::vector<Completion> completions_ RDFC_GUARDED_BY(completion_mu_);
  /// Write end of the self-pipe, shared with worker callbacks; guarded so
  /// Shutdown can close it without racing a straggler's wakeup write.
  int wake_write_fd_ RDFC_GUARDED_BY(completion_mu_) = -1;

  /// Hosts the single I/O loop task (keeps thread creation inside
  /// util::ThreadPool, per the raw-concurrency lint rule).
  std::unique_ptr<util::ThreadPool> io_pool_;
  bool started_ = false;
};

}  // namespace net
}  // namespace rdfc
