#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "net/wire.h"
#include "util/stats.h"
#include "util/status.h"

namespace rdfc {
namespace net {

/// Workload shape for the two canonical load-generation disciplines:
///
///  - Closed loop (RunClosedLoop): `concurrency` virtual clients, each with
///    its own connection, issuing blocking round trips back to back.  The
///    arrival rate self-throttles to the server's service rate, so this
///    measures CAPACITY (throughput at a given concurrency).
///  - Open loop (RunOpenLoop): requests are injected at a FIXED arrival
///    rate over pipelined nonblocking connections regardless of completions
///    — arrivals do not slow down when the server does, so this measures
///    TAIL LATENCY under a chosen offered load, including overload.
struct LoadOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Probe texts, cycled.  `burst` consecutive requests share one query
  /// (request i uses queries[(i / burst) % queries.size()]), modelling the
  /// anchor-sharing bursts the server's batch admission groups.
  std::vector<std::string> queries;
  std::size_t burst = 1;

  // Closed loop.
  std::size_t concurrency = 4;
  std::size_t total_requests = 1000;

  // Open loop.
  double rate_per_sec = 1000.0;
  double duration_ms = 1000.0;
  std::size_t connections = 4;
  /// Give-up bound for responses still missing after the send phase.
  double drain_timeout_ms = 5000.0;

  // Applied to every probe.
  std::uint32_t deadline_ms = 0;
  std::uint32_t simulated_io_micros = 0;
};

struct LoadReport {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;        // kOk, not degraded
  std::uint64_t degraded = 0;  // kOk with the degraded flag
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t shed = 0;  // kResourceExhausted
  std::uint64_t quarantined = 0;
  std::uint64_t invalid = 0;  // kInvalidArgument
  std::uint64_t shutting_down = 0;
  std::uint64_t other_errors = 0;  // kInternal / transport failures
  /// Open loop only: responses never received within the drain timeout.
  std::uint64_t lost = 0;
  double wall_ms = 0.0;
  double offered_rps = 0.0;   // open loop: the configured arrival rate
  double achieved_rps = 0.0;  // responses per wall-clock second
  /// Client-observed round-trip latency (send to response).
  util::LatencyHistogram latency_micros;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;

  /// Folds one response into the outcome counters.
  void Count(const WireResponse& response);
  /// Single JSON object (counters + p50/p95/p99/p999).
  std::string ToJson() const;
  void Print(std::ostream& os) const;
};

/// Runs the closed-loop discipline against a running server.  Fails only on
/// setup errors (connect failure); per-request transport errors are counted
/// in the report.
[[nodiscard]] util::Result<LoadReport> RunClosedLoop(
    const LoadOptions& options);

/// Runs the open-loop discipline (single-threaded poll over
/// `options.connections` pipelined nonblocking connections).
[[nodiscard]] util::Result<LoadReport> RunOpenLoop(const LoadOptions& options);

}  // namespace net
}  // namespace rdfc
