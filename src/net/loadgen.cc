#include "net/loadgen.h"

#include <poll.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "net/client.h"
#include "util/mutex.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace rdfc {
namespace net {

namespace {

const std::string& QueryFor(const LoadOptions& options, std::uint64_t i) {
  const std::size_t burst = std::max<std::size_t>(1, options.burst);
  return options.queries[(i / burst) % options.queries.size()];
}

}  // namespace

void LoadReport::Count(const WireResponse& response) {
  switch (response.status) {
    case WireStatus::kOk:
      if (response.degraded) {
        ++degraded;
      } else {
        ++ok;
      }
      return;
    case WireStatus::kDeadlineExceeded:
      ++deadline_exceeded;
      return;
    case WireStatus::kResourceExhausted:
      ++shed;
      return;
    case WireStatus::kQuarantined:
      ++quarantined;
      return;
    case WireStatus::kInvalidArgument:
      ++invalid;
      return;
    case WireStatus::kShuttingDown:
      ++shutting_down;
      return;
    case WireStatus::kInternal:
      ++other_errors;
      return;
  }
  ++other_errors;
}

std::string LoadReport::ToJson() const {
  std::ostringstream os;
  os << "{\"sent\":" << sent << ",\"ok\":" << ok << ",\"degraded\":" << degraded
     << ",\"deadline_exceeded\":" << deadline_exceeded << ",\"shed\":" << shed
     << ",\"quarantined\":" << quarantined << ",\"invalid\":" << invalid
     << ",\"shutting_down\":" << shutting_down
     << ",\"other_errors\":" << other_errors << ",\"lost\":" << lost
     << ",\"wall_ms\":" << wall_ms << ",\"offered_rps\":" << offered_rps
     << ",\"achieved_rps\":" << achieved_rps
     << ",\"bytes_sent\":" << bytes_sent
     << ",\"bytes_received\":" << bytes_received
     << ",\"latency_us\":{\"count\":" << latency_micros.count()
     << ",\"mean\":" << latency_micros.mean()
     << ",\"p50\":" << latency_micros.Percentile(50)
     << ",\"p95\":" << latency_micros.Percentile(95)
     << ",\"p99\":" << latency_micros.Percentile(99)
     << ",\"p999\":" << latency_micros.Percentile(99.9) << "}}";
  return os.str();
}

void LoadReport::Print(std::ostream& os) const {
  os << "sent " << sent << "  ok " << ok << "  degraded " << degraded
     << "  deadline " << deadline_exceeded << "  shed " << shed
     << "  quarantined " << quarantined << "  invalid " << invalid
     << "  lost " << lost << "\n"
     << "wall " << wall_ms << " ms  achieved " << achieved_rps
     << " rps (offered " << offered_rps << ")\n"
     << "latency us: p50 " << latency_micros.Percentile(50) << "  p95 "
     << latency_micros.Percentile(95) << "  p99 "
     << latency_micros.Percentile(99) << "  p999 "
     << latency_micros.Percentile(99.9) << "\n";
}

util::Result<LoadReport> RunClosedLoop(const LoadOptions& options) {
  if (options.queries.empty()) {
    return util::Status::InvalidArgument("closed loop needs >= 1 query");
  }
  const std::size_t concurrency = std::max<std::size_t>(1, options.concurrency);

  // Connect up front so setup failures abort instead of skewing the run.
  std::vector<std::unique_ptr<Client>> clients;
  clients.reserve(concurrency);
  for (std::size_t i = 0; i < concurrency; ++i) {
    auto client = std::make_unique<Client>();
    RDFC_RETURN_NOT_OK(client->Connect(options.host, options.port));
    clients.push_back(std::move(client));
  }

  LoadReport report;
  util::Mutex report_mu;
  std::atomic<std::uint64_t> next{0};
  util::Timer wall;
  {
    util::ThreadPool::Options pool_options;
    pool_options.num_threads = concurrency;
    pool_options.queue_capacity = concurrency;
    util::ThreadPool pool(pool_options);
    for (std::size_t c = 0; c < concurrency; ++c) {
      Client* client = clients[c].get();
      const util::Status submitted =
          pool.TrySubmit([&options, &report, &report_mu, &next,
                          client](std::size_t) {
            LoadReport local;
            util::Timer rtt;
            while (true) {
              const std::uint64_t i =
                  next.fetch_add(1, std::memory_order_relaxed);
              if (i >= options.total_requests) break;
              rtt.Restart();
              util::Result<WireResponse> response =
                  client->Probe(QueryFor(options, i), options.deadline_ms,
                                options.simulated_io_micros);
              ++local.sent;
              local.latency_micros.Add(rtt.ElapsedMicros());
              if (response.ok()) {
                local.Count(response.value());
              } else {
                ++local.other_errors;
              }
            }
            util::MutexLock lock(&report_mu);
            report.sent += local.sent;
            report.ok += local.ok;
            report.degraded += local.degraded;
            report.deadline_exceeded += local.deadline_exceeded;
            report.shed += local.shed;
            report.quarantined += local.quarantined;
            report.invalid += local.invalid;
            report.shutting_down += local.shutting_down;
            report.other_errors += local.other_errors;
            report.latency_micros.Merge(local.latency_micros);
          });
      if (!submitted.ok()) return submitted;
    }
    pool.Shutdown();  // waits for every virtual client to finish
  }
  report.wall_ms = wall.ElapsedMillis();
  report.achieved_rps =
      report.wall_ms > 0.0 ? 1000.0 * report.sent / report.wall_ms : 0.0;
  report.offered_rps = report.achieved_rps;  // closed loop: self-throttled
  for (const auto& client : clients) {
    report.bytes_sent += client->bytes_sent();
    report.bytes_received += client->bytes_received();
  }
  return report;
}

util::Result<LoadReport> RunOpenLoop(const LoadOptions& options) {
  if (options.queries.empty()) {
    return util::Status::InvalidArgument("open loop needs >= 1 query");
  }
  if (options.rate_per_sec <= 0.0) {
    return util::Status::InvalidArgument("open loop needs rate_per_sec > 0");
  }
  const std::size_t num_conns = std::max<std::size_t>(1, options.connections);

  std::vector<std::unique_ptr<Client>> clients;
  clients.reserve(num_conns);
  for (std::size_t i = 0; i < num_conns; ++i) {
    auto client = std::make_unique<Client>();
    RDFC_RETURN_NOT_OK(client->Connect(options.host, options.port));
    RDFC_RETURN_NOT_OK(client->SetNonBlocking());
    clients.push_back(std::move(client));
  }

  LoadReport report;
  report.offered_rps = options.rate_per_sec;
  // Send-time (µs on the wall timer) per in-flight request, per connection.
  std::vector<std::unordered_map<std::uint64_t, double>> in_flight(num_conns);
  std::vector<bool> alive(num_conns, true);
  std::vector<WireResponse> responses;

  const double interval_micros = 1e6 / options.rate_per_sec;
  const double duration_micros = options.duration_ms * 1000.0;
  const double drain_deadline_micros =
      duration_micros + options.drain_timeout_ms * 1000.0;
  double next_send_micros = 0.0;
  std::uint64_t next_id = 1;
  std::uint64_t received = 0;
  util::Timer wall;

  while (true) {
    const double now = wall.ElapsedMicros();
    const bool sending = now < duration_micros;
    if (!sending && received >= report.sent) break;
    if (!sending && now > drain_deadline_micros) break;  // lost responses

    // Inject every arrival whose scheduled time has come.  The timeline does
    // NOT stretch under backpressure: requests the sockets cannot take yet
    // queue in userspace with their latency clock already running — that is
    // what makes this an open loop.
    while (sending && next_send_micros <= wall.ElapsedMicros()) {
      const std::size_t c = report.sent % num_conns;
      if (alive[c]) {
        WireRequest request;
        request.opcode = Opcode::kProbe;
        request.id = next_id++;
        request.deadline_ms = options.deadline_ms;
        request.simulated_io_micros = options.simulated_io_micros;
        request.query = QueryFor(options, report.sent);
        clients[c]->QueueRequest(request);
        in_flight[c].emplace(request.id, wall.ElapsedMicros());
      } else {
        ++report.other_errors;  // connection died earlier; arrival still counts
      }
      ++report.sent;
      next_send_micros += interval_micros;
    }

    std::vector<pollfd> fds;
    fds.reserve(num_conns);
    for (std::size_t c = 0; c < num_conns; ++c) {
      short events = 0;
      if (alive[c]) {
        events = POLLIN;
        if (clients[c]->has_queued()) events |= POLLOUT;
      }
      fds.push_back({alive[c] ? clients[c]->fd() : -1, events, 0});
    }
    int timeout_ms = 10;
    if (sending) {
      const double until_next = next_send_micros - wall.ElapsedMicros();
      timeout_ms = std::max(0, static_cast<int>(until_next / 1000.0));
      timeout_ms = std::min(timeout_ms, 10);
    }
    (void)::poll(fds.data(), fds.size(), timeout_ms);

    for (std::size_t c = 0; c < num_conns; ++c) {
      if (!alive[c]) continue;
      if (clients[c]->has_queued() && !clients[c]->FlushQueued().ok()) {
        alive[c] = false;
        continue;
      }
      responses.clear();
      if (!clients[c]->ReadAvailable(&responses).ok()) {
        alive[c] = false;
        continue;
      }
      const double now_micros = wall.ElapsedMicros();
      for (const WireResponse& response : responses) {
        ++received;
        report.Count(response);
        const auto it = in_flight[c].find(response.id);
        if (it != in_flight[c].end()) {
          report.latency_micros.Add(now_micros - it->second);
          in_flight[c].erase(it);
        }
      }
    }
  }

  report.lost = report.sent - received;
  report.wall_ms = wall.ElapsedMillis();
  report.achieved_rps =
      report.wall_ms > 0.0 ? 1000.0 * received / report.wall_ms : 0.0;
  for (const auto& client : clients) {
    report.bytes_sent += client->bytes_sent();
    report.bytes_received += client->bytes_received();
  }
  return report;
}

}  // namespace net
}  // namespace rdfc
