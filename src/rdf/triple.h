#pragma once

#include <cstdint>
#include <functional>

#include "rdf/term.h"

namespace rdfc {
namespace rdf {

/// A triple of interned term ids.  Used both for data triples (in a Graph,
/// where terms are IRIs/literals/blanks) and for triple patterns (in a
/// BgpQuery, where any position may also hold a variable).
struct Triple {
  TermId s = kNullTerm;
  TermId p = kNullTerm;
  TermId o = kNullTerm;

  Triple() = default;
  Triple(TermId s_in, TermId p_in, TermId o_in) : s(s_in), p(p_in), o(o_in) {}

  bool operator==(const Triple& other) const {
    return s == other.s && p == other.p && o == other.o;
  }
  /// Lexicographic (s, p, o) order on term ids; gives queries a canonical
  /// triple order for hashing/dedup.
  bool operator<(const Triple& other) const {
    if (s != other.s) return s < other.s;
    if (p != other.p) return p < other.p;
    return o < other.o;
  }
};

struct TripleHash {
  std::size_t operator()(const Triple& t) const {
    std::uint64_t h = t.s;
    h = h * 0x9E3779B97F4A7C15ull + t.p;
    h = h * 0x9E3779B97F4A7C15ull + t.o;
    h ^= h >> 29;
    return static_cast<std::size_t>(h);
  }
};

}  // namespace rdf
}  // namespace rdfc
