#include "rdf/graph.h"

namespace rdfc {
namespace rdf {

bool Graph::Add(const Triple& t) {
  if (!set_.insert(t).second) return false;
  const auto idx = static_cast<std::uint32_t>(triples_.size());
  triples_.push_back(t);
  by_s_[t.s].push_back(idx);
  by_p_[t.p].push_back(idx);
  by_o_[t.o].push_back(idx);
  by_sp_[PairKey(t.s, t.p)].push_back(idx);
  by_po_[PairKey(t.p, t.o)].push_back(idx);
  return true;
}

std::size_t Graph::Match(TermId s, TermId p, TermId o,
                         const std::function<void(const Triple&)>& fn) const {
  std::size_t count = 0;
  auto emit = [&](const Triple& t) {
    if ((s == kNullTerm || t.s == s) && (p == kNullTerm || t.p == p) &&
        (o == kNullTerm || t.o == o)) {
      ++count;
      fn(t);
    }
  };

  // Fully bound: hash membership test.
  if (s != kNullTerm && p != kNullTerm && o != kNullTerm) {
    Triple t(s, p, o);
    if (set_.count(t)) {
      ++count;
      fn(t);
    }
    return count;
  }

  const std::vector<std::uint32_t>* candidates = nullptr;
  if (s != kNullTerm && p != kNullTerm) {
    auto it = by_sp_.find(PairKey(s, p));
    candidates = it == by_sp_.end() ? nullptr : &it->second;
  } else if (p != kNullTerm && o != kNullTerm) {
    auto it = by_po_.find(PairKey(p, o));
    candidates = it == by_po_.end() ? nullptr : &it->second;
  } else if (s != kNullTerm) {
    auto it = by_s_.find(s);
    candidates = it == by_s_.end() ? nullptr : &it->second;
  } else if (o != kNullTerm) {
    auto it = by_o_.find(o);
    candidates = it == by_o_.end() ? nullptr : &it->second;
  } else if (p != kNullTerm) {
    auto it = by_p_.find(p);
    candidates = it == by_p_.end() ? nullptr : &it->second;
  } else {
    for (const Triple& t : triples_) emit(t);
    return count;
  }

  if (candidates == nullptr) return 0;
  for (std::uint32_t idx : *candidates) emit(triples_[idx]);
  return count;
}

std::vector<Triple> Graph::MatchAll(TermId s, TermId p, TermId o) const {
  std::vector<Triple> out;
  Match(s, p, o, [&](const Triple& t) { out.push_back(t); });
  return out;
}

}  // namespace rdf
}  // namespace rdfc
