#include "rdf/dictionary.h"

namespace rdfc {
namespace rdf {

TermDictionary::TermDictionary() {
  // Reserve slot 0 as the invalid/null term.
  lexicals_.emplace_back();
  kinds_.push_back(TermKind::kIri);
}

TermId TermDictionary::Intern(TermKind kind, std::string_view lexical) {
  Term probe{kind, std::string(lexical)};
  auto it = ids_.find(probe);
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<TermId>(lexicals_.size());
  lexicals_.push_back(probe.lexical);
  kinds_.push_back(kind);
  ids_.emplace(std::move(probe), id);
  return id;
}

TermId TermDictionary::CanonicalVariable(std::uint32_t k) {
  RDFC_DCHECK(k >= 1);
  if (k < canonical_vars_.size() && canonical_vars_[k] != kNullTerm) {
    return canonical_vars_[k];
  }
  const TermId id = MakeVariable("x" + std::to_string(k));
  if (canonical_vars_.size() <= k) canonical_vars_.resize(k + 1, kNullTerm);
  canonical_vars_[k] = id;
  return id;
}

void TermDictionary::EnsureCanonicalVariables(std::uint32_t k) {
  for (std::uint32_t i = 1; i <= k; ++i) CanonicalVariable(i);
}

TermId TermDictionary::Lookup(TermKind kind, std::string_view lexical) const {
  Term probe{kind, std::string(lexical)};
  auto it = ids_.find(probe);
  return it == ids_.end() ? kNullTerm : it->second;
}

std::string TermDictionary::ToString(TermId id) const {
  if (id == kNullTerm) return "<null>";
  switch (kind(id)) {
    case TermKind::kIri:
      return "<" + lexical(id) + ">";
    case TermKind::kLiteral:
      return lexical(id);  // Literals keep their quoting in the lexical form.
    case TermKind::kBlank:
      return "_:" + lexical(id);
    case TermKind::kVariable:
      return "?" + lexical(id);
  }
  return "<?>";
}

}  // namespace rdf
}  // namespace rdfc
