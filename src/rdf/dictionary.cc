#include "rdf/dictionary.h"

namespace rdfc {
namespace rdf {

TermDictionary::TermDictionary() {
  // Reserve slot 0 as the invalid/null term.
  kinds_.PushBack(TermKind::kIri);
  lexicals_.PushBack(std::string());
}

TermId TermDictionary::Intern(TermKind kind, std::string_view lexical) {
  Term probe{kind, std::string(lexical)};
  auto it = ids_.find(probe);
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<TermId>(lexicals_.size());
  // kinds_ first: size() is lexicals_.size(), so once a reader can see `id`
  // both the kind and the lexical entry are published.
  kinds_.PushBack(kind);
  lexicals_.PushBack(probe.lexical);
  ids_.emplace(std::move(probe), id);
  return id;
}

TermId TermDictionary::CanonicalVariable(std::uint32_t k) {
  RDFC_DCHECK(k >= 1);
  if (k < canonical_vars_.size()) {
    const TermId known =
        canonical_vars_.At(k).load(std::memory_order_relaxed);
    if (known != kNullTerm) return known;
  }
  const TermId id = MakeVariable("x" + std::to_string(k));
  canonical_vars_.EnsureSize(k + 1);  // fresh slots start at kNullTerm (0)
  canonical_vars_.MutableAt(k).store(id, std::memory_order_release);
  return id;
}

void TermDictionary::EnsureCanonicalVariables(std::uint32_t k) {
  for (std::uint32_t i = 1; i <= k; ++i) CanonicalVariable(i);
}

TermId TermDictionary::Lookup(TermKind kind, std::string_view lexical) const {
  Term probe{kind, std::string(lexical)};
  auto it = ids_.find(probe);
  return it == ids_.end() ? kNullTerm : it->second;
}

std::string TermDictionary::ToString(TermId id) const {
  if (id == kNullTerm) return "<null>";
  switch (kind(id)) {
    case TermKind::kIri:
      return "<" + lexical(id) + ">";
    case TermKind::kLiteral:
      return lexical(id);  // Literals keep their quoting in the lexical form.
    case TermKind::kBlank:
      return "_:" + lexical(id);
    case TermKind::kVariable:
      return "?" + lexical(id);
  }
  return "<?>";
}

}  // namespace rdf
}  // namespace rdfc
