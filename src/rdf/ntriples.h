#pragma once

#include <string>
#include <string_view>

#include "rdf/graph.h"
#include "util/status.h"

namespace rdfc {
namespace rdf {

/// Serialises a graph as N-Triples (one `<s> <p> <o> .` line per triple,
/// canonical escaping).  Blank nodes render as `_:label`.
std::string WriteNTriples(const Graph& graph, const TermDictionary& dict);

/// Parses an N-Triples document.  N-Triples is a syntactic subset of the
/// Turtle dialect the library ships, so this delegates to ParseTurtle after
/// a cheap well-formedness scan (no prefixes or sugar allowed).
[[nodiscard]] util::Status ParseNTriples(std::string_view text, TermDictionary* dict,
                           Graph* graph);

}  // namespace rdf
}  // namespace rdfc
