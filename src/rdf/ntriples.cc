#include "rdf/ntriples.h"

#include "rdf/turtle_parser.h"
#include "util/string_util.h"

namespace rdfc {
namespace rdf {

namespace {

std::string RenderTerm(TermId term, const TermDictionary& dict) {
  switch (dict.kind(term)) {
    case TermKind::kIri:
      return "<" + dict.lexical(term) + ">";
    case TermKind::kBlank:
      return "_:" + dict.lexical(term);
    case TermKind::kLiteral: {
      // Stored form: `"content"` with an optional `@lang` / `^^<iri>` tail;
      // the content is unescaped, so re-escape it for strict N-Triples.
      const std::string& lex = dict.lexical(term);
      std::size_t content_end = lex.size();  // position of the closing quote
      if (!lex.empty() && lex.back() == '"') {
        content_end = lex.size() - 1;
      } else {
        const std::size_t lang = lex.rfind("\"@");
        const std::size_t dtype = lex.rfind("\"^^");
        content_end = std::min(lang == std::string::npos ? lex.size() : lang,
                               dtype == std::string::npos ? lex.size() : dtype);
      }
      std::string out = "\"";
      for (std::size_t i = 1; i < content_end; ++i) {
        switch (lex[i]) {
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          default: out += lex[i];
        }
      }
      out += '"';
      out += lex.substr(std::min(content_end + 1, lex.size()));
      return out;
    }
    case TermKind::kVariable:
      // Variables are not valid N-Triples; render as a comment-safe form so
      // debugging dumps stay readable rather than silently invalid.
      return "?" + dict.lexical(term);
  }
  return "";
}

}  // namespace

std::string WriteNTriples(const Graph& graph, const TermDictionary& dict) {
  std::string out;
  for (const Triple& t : graph.triples()) {
    out += RenderTerm(t.s, dict) + " " + RenderTerm(t.p, dict) + " " +
           RenderTerm(t.o, dict) + " .\n";
  }
  return out;
}

util::Status ParseNTriples(std::string_view text, TermDictionary* dict,
                           Graph* graph) {
  // Reject Turtle-only constructs so callers get strict N-Triples semantics.
  for (std::string_view line_view : util::Split(text, '\n')) {
    const std::string_view line = util::Trim(line_view);
    if (line.empty() || line[0] == '#') continue;
    if (util::StartsWith(line, "@prefix") || util::StartsWith(line, "PREFIX") ||
        util::StartsWith(line, "@base") || util::StartsWith(line, "BASE")) {
      return util::Status::ParseError(
          "directives are not allowed in N-Triples");
    }
  }
  return ParseTurtle(text, dict, graph);
}

}  // namespace rdf
}  // namespace rdfc
