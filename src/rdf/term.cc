#include "rdf/term.h"

namespace rdfc {
namespace rdf {

const char* TermKindName(TermKind kind) {
  switch (kind) {
    case TermKind::kIri:
      return "IRI";
    case TermKind::kLiteral:
      return "Literal";
    case TermKind::kBlank:
      return "Blank";
    case TermKind::kVariable:
      return "Variable";
  }
  return "Unknown";
}

}  // namespace rdf
}  // namespace rdfc
