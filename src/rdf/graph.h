#pragma once

#include <cstddef>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/triple.h"

namespace rdfc {
namespace rdf {

/// In-memory RDF graph with hash indexes on each position.  This is the data
/// substrate the examples and property tests evaluate queries against; the
/// paper assumes such a store exists (any of Jena/RDF-3X/... would do).
///
/// The Match() API uses kNullTerm as a wildcard, giving the eight standard
/// access patterns (SPO, SP?, S?O, ...) that an evaluator needs.
class Graph {
 public:
  Graph() = default;

  /// Inserts a triple; returns false if it was already present (set
  /// semantics, matching the paper's assumption).
  bool Add(const Triple& t);
  bool Add(TermId s, TermId p, TermId o) { return Add(Triple(s, p, o)); }

  bool Contains(const Triple& t) const { return set_.count(t) > 0; }

  std::size_t size() const { return triples_.size(); }
  const std::vector<Triple>& triples() const { return triples_; }

  /// Invokes `fn` for every triple matching the pattern, where kNullTerm in
  /// any position is a wildcard.  Returns the number of matches.  Chooses the
  /// most selective available index for the bound positions.
  std::size_t Match(TermId s, TermId p, TermId o,
                    const std::function<void(const Triple&)>& fn) const;

  /// Convenience: collects matches into a vector.
  std::vector<Triple> MatchAll(TermId s, TermId p, TermId o) const;

  /// Number of distinct subjects/predicates/objects (diagnostics).
  std::size_t num_subjects() const { return by_s_.size(); }
  std::size_t num_predicates() const { return by_p_.size(); }
  std::size_t num_objects() const { return by_o_.size(); }

 private:
  std::vector<Triple> triples_;
  std::unordered_set<Triple, TripleHash> set_;
  // Position indexes: term id -> indices into triples_.
  std::unordered_map<TermId, std::vector<std::uint32_t>> by_s_;
  std::unordered_map<TermId, std::vector<std::uint32_t>> by_p_;
  std::unordered_map<TermId, std::vector<std::uint32_t>> by_o_;
  // Pair index for the common (s, p) and (p, o) probes of the matcher.
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> by_sp_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> by_po_;

  static std::uint64_t PairKey(TermId a, TermId b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }
};

}  // namespace rdf
}  // namespace rdfc
