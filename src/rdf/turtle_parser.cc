#include "rdf/turtle_parser.h"

#include <cctype>
#include <string>
#include <unordered_map>

namespace rdfc {
namespace rdf {

namespace {

constexpr char kRdfType[] = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// Hand-rolled scanner/parser for the Turtle subset.  Kept self-contained so
/// the rdf module does not depend on the SPARQL front-end.
class TurtleParser {
 public:
  TurtleParser(std::string_view text, TermDictionary* dict, Graph* graph)
      : text_(text), dict_(dict), graph_(graph) {}

  util::Status Parse() {
    while (true) {
      SkipWhitespaceAndComments();
      if (AtEnd()) return util::Status::OK();
      if (Peek() == '@' || PeekKeyword("PREFIX") || PeekKeyword("prefix")) {
        RDFC_RETURN_NOT_OK(ParsePrefixDirective());
      } else {
        RDFC_RETURN_NOT_OK(ParseTripleStatement());
      }
    }
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return AtEnd() ? '\0' : text_[pos_]; }
  char Advance() { return text_[pos_++]; }

  bool PeekKeyword(std::string_view kw) const {
    if (text_.size() - pos_ < kw.size()) return false;
    for (std::size_t i = 0; i < kw.size(); ++i) {
      if (text_[pos_ + i] != kw[i]) return false;
    }
    const std::size_t after = pos_ + kw.size();
    return after >= text_.size() ||
           std::isspace(static_cast<unsigned char>(text_[after]));
  }

  void SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      const char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (!AtEnd() && Peek() != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  util::Status Error(const std::string& msg) const {
    return util::Status::ParseError(msg + " at offset " +
                                    std::to_string(pos_));
  }

  util::Status ParsePrefixDirective() {
    if (Peek() == '@') {
      ++pos_;
      if (!PeekKeyword("prefix")) return Error("expected @prefix");
      pos_ += 6;
    } else {
      pos_ += 6;  // PREFIX or prefix, validated by caller.
    }
    SkipWhitespaceAndComments();
    std::string prefix;
    while (!AtEnd() && Peek() != ':') prefix += Advance();
    if (AtEnd()) return Error("unterminated prefix name");
    ++pos_;  // ':'
    SkipWhitespaceAndComments();
    if (Peek() != '<') return Error("expected <iri> after prefix");
    RDFC_ASSIGN_OR_RETURN(std::string iri, ScanIriRef());
    prefixes_[prefix] = iri;
    SkipWhitespaceAndComments();
    if (Peek() == '.') ++pos_;  // '@prefix' requires '.', 'PREFIX' omits it.
    return util::Status::OK();
  }

  util::Result<std::string> ScanIriRef() {
    RDFC_DCHECK(Peek() == '<');
    ++pos_;
    std::string iri;
    while (!AtEnd() && Peek() != '>') iri += Advance();
    if (AtEnd()) return Error("unterminated IRI");
    ++pos_;  // '>'
    return iri;
  }

  util::Result<TermId> ParseTerm(bool predicate_position) {
    SkipWhitespaceAndComments();
    if (AtEnd()) return Error("unexpected end of input");
    const char c = Peek();
    if (c == '<') {
      RDFC_ASSIGN_OR_RETURN(std::string iri, ScanIriRef());
      return dict_->MakeIri(iri);
    }
    if (c == '"') return ParseStringLiteral();
    if (c == '_') {
      ++pos_;
      if (Peek() != ':') return Error("expected ':' after '_'");
      ++pos_;
      std::string label;
      while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                          Peek() == '_')) {
        label += Advance();
      }
      return dict_->MakeBlank(label);
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+') {
      return ParseNumericLiteral();
    }
    // 'a' keyword or prefixed name or boolean.
    std::string word;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_' || Peek() == '-' || Peek() == '.' ||
                        Peek() == ':')) {
      // A '.' that terminates the statement must not be swallowed.
      if (Peek() == '.' && (pos_ + 1 >= text_.size() ||
                            std::isspace(static_cast<unsigned char>(
                                text_[pos_ + 1])))) {
        break;
      }
      word += Advance();
    }
    if (word.empty()) return Error("expected term");
    if (word == "a" && predicate_position) return dict_->MakeIri(kRdfType);
    if (word == "true" || word == "false") {
      return dict_->MakeLiteral("\"" + word +
                                "\"^^<http://www.w3.org/2001/XMLSchema#boolean>");
    }
    const std::size_t colon = word.find(':');
    if (colon == std::string::npos) {
      return Error("expected prefixed name, got '" + word + "'");
    }
    const std::string prefix = word.substr(0, colon);
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end()) return Error("unknown prefix '" + prefix + "'");
    return dict_->MakeIri(it->second + word.substr(colon + 1));
  }

  util::Result<TermId> ParseStringLiteral() {
    RDFC_DCHECK(Peek() == '"');
    ++pos_;
    std::string value;
    while (!AtEnd() && Peek() != '"') {
      char c = Advance();
      if (c == '\\' && !AtEnd()) {
        const char esc = Advance();
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '\\': c = '\\'; break;
          case '"': c = '"'; break;
          default: c = esc; break;
        }
      }
      value += c;
    }
    if (AtEnd()) return Error("unterminated string literal");
    ++pos_;  // closing '"'
    std::string lexical = "\"" + value + "\"";
    if (Peek() == '@') {
      ++pos_;
      lexical += '@';
      while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                          Peek() == '-')) {
        lexical += Advance();
      }
    } else if (Peek() == '^' && pos_ + 1 < text_.size() &&
               text_[pos_ + 1] == '^') {
      pos_ += 2;
      SkipWhitespaceAndComments();
      if (Peek() == '<') {
        RDFC_ASSIGN_OR_RETURN(std::string iri, ScanIriRef());
        lexical += "^^<" + iri + ">";
      } else {
        RDFC_ASSIGN_OR_RETURN(TermId dt, ParseTerm(false));
        lexical += "^^<" + dict_->lexical(dt) + ">";
      }
    }
    return dict_->MakeLiteral(lexical);
  }

  util::Result<TermId> ParseNumericLiteral() {
    std::string digits;
    bool is_decimal = false;
    if (Peek() == '-' || Peek() == '+') digits += Advance();
    while (!AtEnd() && (std::isdigit(static_cast<unsigned char>(Peek())) ||
                        Peek() == '.')) {
      // Trailing '.' is a statement terminator, not part of the number.
      if (Peek() == '.') {
        if (pos_ + 1 >= text_.size() ||
            !std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
          break;
        }
        is_decimal = true;
      }
      digits += Advance();
    }
    if (digits.empty() || digits == "-" || digits == "+") {
      return Error("malformed numeric literal");
    }
    const char* dt = is_decimal ? "http://www.w3.org/2001/XMLSchema#decimal"
                                : "http://www.w3.org/2001/XMLSchema#integer";
    return dict_->MakeLiteral("\"" + digits + "\"^^<" + dt + ">");
  }

  util::Status ParseTripleStatement() {
    RDFC_ASSIGN_OR_RETURN(TermId subject, ParseTerm(false));
    while (true) {  // predicate lists separated by ';'
      RDFC_ASSIGN_OR_RETURN(TermId predicate, ParseTerm(true));
      while (true) {  // object lists separated by ','
        RDFC_ASSIGN_OR_RETURN(TermId object, ParseTerm(false));
        graph_->Add(subject, predicate, object);
        SkipWhitespaceAndComments();
        if (Peek() == ',') {
          ++pos_;
          continue;
        }
        break;
      }
      SkipWhitespaceAndComments();
      if (Peek() == ';') {
        ++pos_;
        SkipWhitespaceAndComments();
        if (Peek() == '.') break;  // dangling ';' before '.'
        continue;
      }
      break;
    }
    SkipWhitespaceAndComments();
    if (Peek() != '.') return Error("expected '.' after triple");
    ++pos_;
    return util::Status::OK();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  TermDictionary* dict_;
  Graph* graph_;
  std::unordered_map<std::string, std::string> prefixes_;
};

}  // namespace

util::Status ParseTurtle(std::string_view text, TermDictionary* dict,
                         Graph* graph) {
  TurtleParser parser(text, dict, graph);
  return parser.Parse();
}

}  // namespace rdf
}  // namespace rdfc
