#pragma once

#include <string_view>

#include "rdf/graph.h"
#include "util/status.h"

namespace rdfc {
namespace rdf {

/// Parses a Turtle-subset document into `graph`, interning terms in `dict`.
///
/// Supported syntax (enough for the examples and tests to express realistic
/// data): `@prefix`/`PREFIX` directives, full IRIs `<...>`, prefixed names
/// `p:local`, the `a` keyword, string literals with optional `@lang` or
/// `^^datatype`, integer/decimal/boolean shorthand literals, blank nodes
/// `_:label`, predicate lists with `;`, object lists with `,`, and `#`
/// comments.
[[nodiscard]] util::Status ParseTurtle(std::string_view text, TermDictionary* dict,
                         Graph* graph);

}  // namespace rdf
}  // namespace rdfc
