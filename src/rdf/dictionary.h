#pragma once

#include <atomic>
#include <string>
#include <string_view>
#include <unordered_map>

#include "rdf/term.h"
#include "util/macros.h"
#include "util/snapshot_vector.h"

namespace rdfc {
namespace rdf {

/// Interning dictionary mapping RDF terms to dense TermIds and back.
/// All queries, graphs, serialised tokens, and index structures in this
/// library share one dictionary so that term comparison is an integer
/// comparison — the same trick every production RDF store (RDF-3X,
/// HexaStore, ...) plays.
///
/// Threading contract (single writer / many readers — the regime of the
/// service layer, DESIGN.md "Service layer"):
///
///   - The id -> term read path — size(), Valid(), kind(), lexical(),
///     Is*(), IsConstant(), ToString(), CanonicalVariableIfKnown() — is safe
///     to call from any number of threads concurrently with ONE thread
///     running the mutators.  Storage is chunked (util::SnapshotVector), so
///     growth never moves published entries, and a TermId observed through
///     any happens-before edge downstream of its interning (a published
///     index snapshot, a queue handoff) dereferences safely forever.
///   - The term -> id path and all mutators — Intern(), Make*(), Lookup(),
///     CanonicalVariable(), EnsureCanonicalVariables() — share one hash map
///     and MUST be mutually serialized (Lookup reads the map, so it counts
///     as a writer-side call).  The containment service guards them with its
///     admission mutex; single-threaded users need no locking at all.
class TermDictionary {
 public:
  TermDictionary();
  RDFC_DISALLOW_COPY_AND_ASSIGN(TermDictionary);

  /// Interns (kind, lexical), returning an existing id when already present.
  /// Writer-side.
  TermId Intern(TermKind kind, std::string_view lexical);

  TermId MakeIri(std::string_view iri) { return Intern(TermKind::kIri, iri); }
  TermId MakeLiteral(std::string_view lex) {
    return Intern(TermKind::kLiteral, lex);
  }
  TermId MakeBlank(std::string_view label) {
    return Intern(TermKind::kBlank, label);
  }
  TermId MakeVariable(std::string_view name) {
    return Intern(TermKind::kVariable, name);
  }

  /// The k-th canonical variable `?xk` (k >= 1), used by serialisation
  /// optimisation II (variables renamed in first-appearance order).
  /// Writer-side (interns on first use).
  TermId CanonicalVariable(std::uint32_t k);

  /// Interns canonical variables 1..k eagerly, so read-only consumers (the
  /// index walk) can use CanonicalVariableIfKnown without mutating the
  /// dictionary.  Writer-side.
  void EnsureCanonicalVariables(std::uint32_t k);

  /// Like CanonicalVariable but never interns: returns kNullTerm when ?xk
  /// has not been created yet.  Reader-side (the probe hot path).
  TermId CanonicalVariableIfKnown(std::uint32_t k) const {
    if (k < canonical_vars_.size()) {
      return canonical_vars_.At(k).load(std::memory_order_acquire);
    }
    return kNullTerm;
  }

  /// Returns kNullTerm when (kind, lexical) has never been interned.
  /// Writer-side (shares the hash map with Intern).
  TermId Lookup(TermKind kind, std::string_view lexical) const;

  TermKind kind(TermId id) const {
    RDFC_DCHECK(Valid(id));
    return kinds_.At(id);
  }
  const std::string& lexical(TermId id) const {
    RDFC_DCHECK(Valid(id));
    return lexicals_.At(id);
  }

  bool IsVariable(TermId id) const { return kind(id) == TermKind::kVariable; }
  bool IsIri(TermId id) const { return kind(id) == TermKind::kIri; }
  bool IsLiteral(TermId id) const { return kind(id) == TermKind::kLiteral; }
  bool IsBlank(TermId id) const { return kind(id) == TermKind::kBlank; }
  /// IRIs and literals are "constants" for containment purposes: a
  /// containment mapping must map them to themselves.
  bool IsConstant(TermId id) const {
    const TermKind k = kind(id);
    return k == TermKind::kIri || k == TermKind::kLiteral;
  }

  /// Human-readable rendering: `<iri>`, `"literal"`, `?var`, `_:blank`.
  std::string ToString(TermId id) const;

  /// Number of interned terms (including the reserved null slot).
  std::size_t size() const { return lexicals_.size(); }

  bool Valid(TermId id) const { return id != kNullTerm && id < lexicals_.size(); }

 private:
  std::unordered_map<Term, TermId, TermHash> ids_;  // writer-side only
  // kinds_ is published before lexicals_ for each id, and size() reads
  // lexicals_, so any id below size() has both entries visible.
  util::SnapshotVector<std::string> lexicals_;
  util::SnapshotVector<TermKind> kinds_;
  // Slot k holds the id of ?xk, kNullTerm until interned; written in place
  // after publication, hence the atomic element type.
  util::SnapshotVector<std::atomic<TermId>> canonical_vars_;
};

}  // namespace rdf
}  // namespace rdfc
