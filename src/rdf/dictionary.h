#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"
#include "util/macros.h"

namespace rdfc {
namespace rdf {

/// Interning dictionary mapping RDF terms to dense TermIds and back.
/// All queries, graphs, serialised tokens, and index structures in this
/// library share one dictionary so that term comparison is an integer
/// comparison — the same trick every production RDF store (RDF-3X,
/// HexaStore, ...) plays.
///
/// Not thread-safe; the reproduction is single-threaded like the paper's
/// evaluation ("a single core was used").
class TermDictionary {
 public:
  TermDictionary();
  RDFC_DISALLOW_COPY_AND_ASSIGN(TermDictionary);

  /// Interns (kind, lexical), returning an existing id when already present.
  TermId Intern(TermKind kind, std::string_view lexical);

  TermId MakeIri(std::string_view iri) { return Intern(TermKind::kIri, iri); }
  TermId MakeLiteral(std::string_view lex) {
    return Intern(TermKind::kLiteral, lex);
  }
  TermId MakeBlank(std::string_view label) {
    return Intern(TermKind::kBlank, label);
  }
  TermId MakeVariable(std::string_view name) {
    return Intern(TermKind::kVariable, name);
  }

  /// The k-th canonical variable `?xk` (k >= 1), used by serialisation
  /// optimisation II (variables renamed in first-appearance order).
  TermId CanonicalVariable(std::uint32_t k);

  /// Interns canonical variables 1..k eagerly, so read-only consumers (the
  /// index walk) can use CanonicalVariableIfKnown without mutating the
  /// dictionary.
  void EnsureCanonicalVariables(std::uint32_t k);

  /// Like CanonicalVariable but never interns: returns kNullTerm when ?xk
  /// has not been created yet.  Safe on a const dictionary.
  TermId CanonicalVariableIfKnown(std::uint32_t k) const {
    if (k < canonical_vars_.size() && canonical_vars_[k] != kNullTerm) {
      return canonical_vars_[k];
    }
    return kNullTerm;
  }

  /// Returns kNullTerm when (kind, lexical) has never been interned.
  TermId Lookup(TermKind kind, std::string_view lexical) const;

  TermKind kind(TermId id) const {
    RDFC_DCHECK(Valid(id));
    return kinds_[id];
  }
  const std::string& lexical(TermId id) const {
    RDFC_DCHECK(Valid(id));
    return lexicals_[id];
  }

  bool IsVariable(TermId id) const { return kind(id) == TermKind::kVariable; }
  bool IsIri(TermId id) const { return kind(id) == TermKind::kIri; }
  bool IsLiteral(TermId id) const { return kind(id) == TermKind::kLiteral; }
  bool IsBlank(TermId id) const { return kind(id) == TermKind::kBlank; }
  /// IRIs and literals are "constants" for containment purposes: a
  /// containment mapping must map them to themselves.
  bool IsConstant(TermId id) const {
    const TermKind k = kind(id);
    return k == TermKind::kIri || k == TermKind::kLiteral;
  }

  /// Human-readable rendering: `<iri>`, `"literal"`, `?var`, `_:blank`.
  std::string ToString(TermId id) const;

  /// Number of interned terms (including the reserved null slot).
  std::size_t size() const { return lexicals_.size(); }

  bool Valid(TermId id) const { return id != kNullTerm && id < lexicals_.size(); }

 private:
  std::unordered_map<Term, TermId, TermHash> ids_;
  std::vector<std::string> lexicals_;
  std::vector<TermKind> kinds_;
  std::vector<TermId> canonical_vars_;  // cache for CanonicalVariable
};

}  // namespace rdf
}  // namespace rdfc
