#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace rdfc {
namespace rdf {

/// Dense handle for an interned RDF term.  Ids are assigned by a
/// TermDictionary; 0 is reserved as the invalid/null id so that structures
/// can use `kNullTerm` as a wildcard (e.g. Graph::Match).
using TermId = std::uint32_t;
inline constexpr TermId kNullTerm = 0;

/// RDF term taxonomy following the W3C data model plus SPARQL variables:
/// IRIs identify resources, literals carry values, blank nodes are anonymous
/// resources, and variables only occur in queries.
enum class TermKind : std::uint8_t {
  kIri = 0,
  kLiteral = 1,
  kBlank = 2,
  kVariable = 3,
};

const char* TermKindName(TermKind kind);

/// A term before interning: kind plus lexical form.  Literal lexical forms
/// keep their quoting/datatype suffix (e.g. `"42"^^<...#integer>`) so two
/// literals are equal iff their lexical forms match (RDF term equality).
struct Term {
  TermKind kind;
  std::string lexical;

  bool operator==(const Term& other) const {
    return kind == other.kind && lexical == other.lexical;
  }
};

struct TermHash {
  std::size_t operator()(const Term& t) const {
    return std::hash<std::string>()(t.lexical) * 4u +
           static_cast<std::size_t>(t.kind);
  }
};

}  // namespace rdf
}  // namespace rdfc
