#include "eval/evaluator.h"

#include <algorithm>
#include <set>
#include <unordered_set>

namespace rdfc {
namespace eval {

namespace {

class Engine {
 public:
  Engine(const query::BgpQuery& q, const rdf::Graph& graph,
         const rdf::TermDictionary& dict, const EvalOptions& options)
      : q_(q), graph_(graph), dict_(dict), options_(options) {
    OrderPatterns();
  }

  EvalResult Run() {
    binding_ = options_.initial_binding;
    if (q_.empty()) {
      // The empty BGP has a single solution: the initial binding itself.
      result_.solutions.push_back(binding_);
      return std::move(result_);
    }
    Extend(0);
    return std::move(result_);
  }

 private:
  void OrderPatterns() {
    const auto& patterns = q_.patterns();
    std::vector<bool> chosen(patterns.size(), false);
    std::unordered_set<rdf::TermId> bound;
    auto score = [&](const rdf::Triple& t) {
      int s = 0;
      auto is_bound = [&](rdf::TermId term) {
        return !dict_.IsVariable(term) || bound.count(term) > 0;
      };
      if (is_bound(t.s)) s += 2;
      if (is_bound(t.p)) s += 1;
      if (is_bound(t.o)) s += 2;
      return s;
    };
    for (std::size_t k = 0; k < patterns.size(); ++k) {
      int best_score = -1;
      std::size_t best = 0;
      for (std::size_t i = 0; i < patterns.size(); ++i) {
        if (chosen[i]) continue;
        const int s = score(patterns[i]);
        if (s > best_score) {
          best_score = s;
          best = i;
        }
      }
      chosen[best] = true;
      order_.push_back(patterns[best]);
      for (rdf::TermId term :
           {patterns[best].s, patterns[best].p, patterns[best].o}) {
        if (dict_.IsVariable(term)) bound.insert(term);
      }
    }
  }

  rdf::TermId Resolve(rdf::TermId term) const {
    if (!dict_.IsVariable(term)) return term;
    auto it = binding_.find(term);
    return it == binding_.end() ? rdf::kNullTerm : it->second;
  }

  bool Extend(std::size_t depth) {
    if (depth == order_.size()) {
      result_.solutions.push_back(binding_);
      return options_.max_solutions != 0 &&
             result_.solutions.size() >= options_.max_solutions;
    }
    const rdf::Triple& pattern = order_[depth];
    const rdf::TermId s = Resolve(pattern.s);
    const rdf::TermId p = Resolve(pattern.p);
    const rdf::TermId o = Resolve(pattern.o);

    bool stop = false;
    graph_.Match(s, p, o, [&](const rdf::Triple& t) {
      if (stop) return;
      ++result_.steps;
      std::vector<rdf::TermId> trail;
      auto bind = [&](rdf::TermId pt, rdf::TermId value) {
        if (!dict_.IsVariable(pt)) return pt == value;
        auto [it, fresh] = binding_.emplace(pt, value);
        if (fresh) {
          trail.push_back(pt);
          return true;
        }
        return it->second == value;
      };
      if (bind(pattern.s, t.s) && bind(pattern.p, t.p) &&
          bind(pattern.o, t.o)) {
        if (Extend(depth + 1)) stop = true;
      }
      for (rdf::TermId var : trail) binding_.erase(var);
    });
    return stop;
  }

  const query::BgpQuery& q_;
  const rdf::Graph& graph_;
  const rdf::TermDictionary& dict_;
  EvalOptions options_;
  std::vector<rdf::Triple> order_;
  Binding binding_;
  EvalResult result_;
};

}  // namespace

EvalResult Evaluate(const query::BgpQuery& q, const rdf::Graph& graph,
                    const rdf::TermDictionary& dict,
                    const EvalOptions& options) {
  Engine engine(q, graph, dict, options);
  return engine.Run();
}

bool Ask(const query::BgpQuery& q, const rdf::Graph& graph,
         const rdf::TermDictionary& dict) {
  EvalOptions options;
  options.max_solutions = 1;
  return Evaluate(q, graph, dict, options).ask();
}

std::vector<std::vector<rdf::TermId>> ProjectedAnswers(
    const query::BgpQuery& q, const rdf::Graph& graph,
    const rdf::TermDictionary& dict) {
  std::vector<rdf::TermId> projection = q.distinguished();
  if (q.select_all() || projection.empty()) {
    projection = q.Variables(dict);
  }
  EvalResult result = Evaluate(q, graph, dict);
  std::set<std::vector<rdf::TermId>> dedup;
  for (const Binding& binding : result.solutions) {
    std::vector<rdf::TermId> row;
    row.reserve(projection.size());
    for (rdf::TermId var : projection) {
      auto it = binding.find(var);
      row.push_back(it == binding.end() ? rdf::kNullTerm : it->second);
    }
    dedup.insert(std::move(row));
  }
  return std::vector<std::vector<rdf::TermId>>(dedup.begin(), dedup.end());
}

rdf::Graph Freeze(const query::BgpQuery& q, rdf::TermDictionary* dict,
                  std::unordered_map<rdf::TermId, rdf::TermId>* image) {
  rdf::Graph graph;
  std::unordered_map<rdf::TermId, rdf::TermId> local;
  auto frozen = [&](rdf::TermId term) {
    if (!dict->IsVariable(term) && !dict->IsBlank(term)) return term;
    auto it = local.find(term);
    if (it != local.end()) return it->second;
    const rdf::TermId iri = dict->MakeIri(
        "urn:rdfc:frozen/" + dict->lexical(term) + "/" +
        std::to_string(term));
    local.emplace(term, iri);
    return iri;
  };
  for (const rdf::Triple& t : q.patterns()) {
    graph.Add(frozen(t.s), frozen(t.p), frozen(t.o));
  }
  if (image != nullptr) *image = std::move(local);
  return graph;
}

}  // namespace eval
}  // namespace rdfc
