#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "query/bgp_query.h"
#include "rdf/dictionary.h"
#include "rdf/graph.h"

namespace rdfc {
namespace eval {

/// A solution: variable -> graph term.
using Binding = std::unordered_map<rdf::TermId, rdf::TermId>;

struct EvalOptions {
  /// Stop after this many solutions (0 = all).  Ask() uses 1.
  std::size_t max_solutions = 0;
  /// Pre-bound variables: the evaluation only extends this binding.  The
  /// rewriting executor seeds evaluations with view-row bindings this way.
  Binding initial_binding;
};

struct EvalResult {
  std::vector<Binding> solutions;  // full bindings over all variables
  std::size_t steps = 0;
  bool ask() const { return !solutions.empty(); }
};

/// Backtracking BGP evaluation over an in-memory Graph — the query-answering
/// substrate the containment semantics is defined against.  Pattern order is
/// chosen greedily by bound-position count; each pattern probe uses the
/// graph's positional indexes.
///
/// Used by the examples (materialised views hold real result sets) and by
/// the property tests: if Q ⊑ W then Ask(Q, G) implies Ask(W, G) for every
/// graph G, and the distinguished-variable projections nest.
EvalResult Evaluate(const query::BgpQuery& q, const rdf::Graph& graph,
                    const rdf::TermDictionary& dict,
                    const EvalOptions& options = {});

/// Boolean convenience.
bool Ask(const query::BgpQuery& q, const rdf::Graph& graph,
         const rdf::TermDictionary& dict);

/// Projects solutions onto the query's distinguished variables, producing
/// deduplicated answer tuples in a stable order (for set comparison).
std::vector<std::vector<rdf::TermId>> ProjectedAnswers(
    const query::BgpQuery& q, const rdf::Graph& graph,
    const rdf::TermDictionary& dict);

/// Freezes a query into its canonical instance: each variable becomes a
/// fresh IRI, each pattern a data triple.  The Chandra-Merlin argument makes
/// this the second ground truth used in the tests: Q ⊑ W iff W has a match
/// on freeze(Q) consistent with the frozen variable images.
rdf::Graph Freeze(const query::BgpQuery& q, rdf::TermDictionary* dict,
                  std::unordered_map<rdf::TermId, rdf::TermId>* image =
                      nullptr);

}  // namespace eval
}  // namespace rdfc
