#include "baselines/subgraph_iso.h"

#include <unordered_map>
#include <unordered_set>

namespace rdfc {
namespace baselines {

namespace {

class IsoSearch {
 public:
  IsoSearch(const query::BgpQuery& w, const query::BgpQuery& q,
            const rdf::TermDictionary& dict)
      : w_(w), q_(q), dict_(dict) {
    for (const rdf::Triple& t : q_.patterns()) {
      q_by_pred_[t.p].push_back(t);
    }
  }

  SubgraphIsoResult Run() {
    SubgraphIsoResult result;
    if (w_.empty()) {
      result.found = true;
      return result;
    }
    if (Extend(0)) {
      result.found = true;
      result.mapping = sigma_;
      for (const auto& [var, pred] : pred_sigma_) {
        result.mapping.emplace(var, pred);
      }
    }
    return result;
  }

 private:
  bool Unify(rdf::TermId pt, rdf::TermId qt,
             std::vector<rdf::TermId>* trail) {
    if (!dict_.IsVariable(pt)) return pt == qt;
    // Variables map to variables only — constants in Q are off-limits.
    if (!dict_.IsVariable(qt)) return false;
    auto it = sigma_.find(pt);
    if (it != sigma_.end()) return it->second == qt;
    // Injectivity: no two W variables share an image.
    if (used_images_.count(qt)) return false;
    sigma_.emplace(pt, qt);
    used_images_.insert(qt);
    trail->push_back(pt);
    return true;
  }

  /// Predicates are edge labels, not vertices: a variable predicate is a
  /// wildcard bound consistently but without injectivity or the
  /// variables-only restriction.
  bool UnifyPred(rdf::TermId pt, rdf::TermId qt,
                 std::vector<rdf::TermId>* trail) {
    if (!dict_.IsVariable(pt)) return pt == qt;
    auto it = pred_sigma_.find(pt);
    if (it != pred_sigma_.end()) return it->second == qt;
    pred_sigma_.emplace(pt, qt);
    trail->push_back(pt);
    return true;
  }

  void Undo(const std::vector<rdf::TermId>& trail) {
    for (rdf::TermId var : trail) {
      auto it = sigma_.find(var);
      used_images_.erase(it->second);
      sigma_.erase(it);
    }
  }

  bool Extend(std::size_t depth) {
    if (depth == w_.patterns().size()) return true;
    const rdf::Triple& pattern = w_.patterns()[depth];

    const std::vector<rdf::Triple>* bucket;
    std::vector<rdf::Triple> all;
    if (!dict_.IsVariable(pattern.p)) {
      auto it = q_by_pred_.find(pattern.p);
      if (it == q_by_pred_.end()) return false;
      bucket = &it->second;
    } else {
      all = q_.patterns();
      bucket = &all;
    }

    for (const rdf::Triple& candidate : *bucket) {
      std::vector<rdf::TermId> trail;
      std::vector<rdf::TermId> pred_trail;
      if (Unify(pattern.s, candidate.s, &trail) &&
          UnifyPred(pattern.p, candidate.p, &pred_trail) &&
          Unify(pattern.o, candidate.o, &trail)) {
        if (Extend(depth + 1)) return true;
      }
      Undo(trail);
      for (rdf::TermId var : pred_trail) pred_sigma_.erase(var);
    }
    return false;
  }

  const query::BgpQuery& w_;
  const query::BgpQuery& q_;
  const rdf::TermDictionary& dict_;
  std::unordered_map<rdf::TermId, std::vector<rdf::Triple>> q_by_pred_;
  containment::VarMapping sigma_;
  containment::VarMapping pred_sigma_;
  std::unordered_set<rdf::TermId> used_images_;
};

}  // namespace

SubgraphIsoResult FindSubgraphIsomorphism(const query::BgpQuery& w,
                                          const query::BgpQuery& q,
                                          const rdf::TermDictionary& dict) {
  IsoSearch search(w, q, dict);
  return search.Run();
}

bool IsSubgraphIsomorphic(const query::BgpQuery& w, const query::BgpQuery& q,
                          const rdf::TermDictionary& dict) {
  return FindSubgraphIsomorphism(w, q, dict).found;
}

}  // namespace baselines
}  // namespace rdfc
