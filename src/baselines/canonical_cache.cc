#include "baselines/canonical_cache.h"

namespace rdfc {
namespace baselines {

std::uint64_t CanonicalCache::HashTokens(
    const std::vector<query::Token>& tokens) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  query::TokenHash token_hash;
  for (const query::Token& t : tokens) {
    h ^= token_hash(t);
    h *= 0x100000001B3ull;
  }
  return h;
}

util::Result<CanonicalCache::InsertOutcome> CanonicalCache::Insert(
    const query::BgpQuery& q, std::uint64_t external_id) {
  RDFC_ASSIGN_OR_RETURN(containment::PreparedStored prepared,
                        containment::PrepareStored(q, dict_));
  const std::uint64_t key = HashTokens(prepared.tokens);
  auto& bucket = by_hash_[key];
  for (std::uint32_t id : bucket) {
    if (entries_[id].canonical.SamePatterns(prepared.canonical)) {
      entries_[id].external_ids.push_back(external_id);
      return InsertOutcome{id, false};
    }
  }
  const auto id = static_cast<std::uint32_t>(entries_.size());
  entries_.push_back(Entry{std::move(prepared.canonical), {external_id}});
  bucket.push_back(id);
  return InsertOutcome{id, true};
}

CanonicalCache::LookupResult CanonicalCache::Lookup(
    const query::BgpQuery& q) const {
  LookupResult result;
  auto prepared = containment::PrepareStored(q, dict_);
  if (!prepared.ok()) return result;
  const std::uint64_t key = HashTokens(prepared->tokens);
  auto it = by_hash_.find(key);
  if (it == by_hash_.end()) return result;
  for (std::uint32_t id : it->second) {
    if (entries_[id].canonical.SamePatterns(prepared->canonical)) {
      result.found = true;
      result.entry_id = id;
      return result;
    }
  }
  return result;
}

}  // namespace baselines
}  // namespace rdfc
