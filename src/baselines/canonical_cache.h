#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "containment/pipeline.h"
#include "query/bgp_query.h"
#include "rdf/dictionary.h"
#include "util/status.h"

namespace rdfc {
namespace baselines {

/// Exact-match query cache baseline (the canonical-labelling strategy of
/// SPARQL result caches, cf. the paper's related work [56]): queries are
/// keyed by their canonical serialised form, so lookups only hit when the
/// incoming query is *isomorphic* to a cached one — strictly weaker than
/// containment.  The mv-index subsumes every hit this structure can produce;
/// the delta, measured in bench_baselines, is the paper's argument for
/// containment-based indexing.
class CanonicalCache {
 public:
  explicit CanonicalCache(rdf::TermDictionary* dict) : dict_(dict) {}
  RDFC_DISALLOW_COPY_AND_ASSIGN(CanonicalCache);

  struct InsertOutcome {
    std::uint32_t entry_id = 0;
    bool was_new = false;
  };

  /// Inserts a query keyed by canonical form.
  [[nodiscard]] util::Result<InsertOutcome> Insert(const query::BgpQuery& q,
                                     std::uint64_t external_id = 0);

  /// Exact (isomorphism) lookup: the entry whose canonical form equals the
  /// probe's, or nullopt-like kNotFound (returned as -1 via found=false).
  struct LookupResult {
    bool found = false;
    std::uint32_t entry_id = 0;
  };
  LookupResult Lookup(const query::BgpQuery& q) const;

  std::size_t num_entries() const { return entries_.size(); }
  const query::BgpQuery& entry(std::uint32_t id) const {
    return entries_[id].canonical;
  }
  const std::vector<std::uint64_t>& external_ids(std::uint32_t id) const {
    return entries_[id].external_ids;
  }

 private:
  struct Entry {
    query::BgpQuery canonical;
    std::vector<std::uint64_t> external_ids;
  };

  /// Canonical key: token stream of the prepared form, hashed; collisions
  /// resolved by full pattern comparison.
  static std::uint64_t HashTokens(const std::vector<query::Token>& tokens);

  rdf::TermDictionary* dict_;
  std::vector<Entry> entries_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> by_hash_;
};

}  // namespace baselines
}  // namespace rdfc
