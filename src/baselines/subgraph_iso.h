#pragma once

#include "containment/homomorphism.h"
#include "query/bgp_query.h"
#include "rdf/dictionary.h"

namespace rdfc {
namespace baselines {

/// Subgraph-isomorphism matching between query graphs — the strategy of the
/// graph-caching systems in the paper's related work ([69-71]: filter
/// candidates, then verify by subgraph isomorphism).  Differs from a
/// containment mapping in two ways that make it an *incomplete* proxy for
/// containment (the paper's Section 8 example):
///   1. the vertex mapping must be injective;
///   2. variables may only map to variables (never fold onto constants).
///
/// Returns true iff the pattern graph of `w` is subgraph-isomorphic to the
/// pattern graph of `q` (constants fixed, predicates matched exactly,
/// variable predicates acting as wildcards that must still map injectively
/// and consistently).
bool IsSubgraphIsomorphic(const query::BgpQuery& w, const query::BgpQuery& q,
                          const rdf::TermDictionary& dict);

/// Demonstrating witness for the mapping, when one exists.
struct SubgraphIsoResult {
  bool found = false;
  containment::VarMapping mapping;
};
SubgraphIsoResult FindSubgraphIsomorphism(const query::BgpQuery& w,
                                          const query::BgpQuery& q,
                                          const rdf::TermDictionary& dict);

}  // namespace baselines
}  // namespace rdfc
