#include "cache/semantic_cache.h"

#include <limits>

namespace rdfc {
namespace cache {

SemanticCache::SemanticCache(const rdf::Graph* graph,
                             rdf::TermDictionary* dict,
                             const CacheOptions& options)
    : graph_(graph), dict_(dict), options_(options), index_(dict) {}

bool SemanticCache::WouldHit(const query::BgpQuery& q) const {
  index::ProbeOptions probe_options;
  probe_options.max_mappings = 1;
  const index::ProbeResult probe = index_.FindContaining(q, probe_options);
  for (const auto& match : probe.contained) {
    if (!match.outcome.mappings.empty() && live_.count(match.stored_id) != 0) {
      return true;
    }
  }
  return false;
}

rewriting::ExecutionReport SemanticCache::Answer(const query::BgpQuery& q) {
  ++stats_.lookups;
  ++clock_;

  index::ProbeOptions probe_options;
  probe_options.max_mappings = 1;
  const index::ProbeResult probe = index_.FindContaining(q, probe_options);

  // Cheapest containing entry (fewest rows) wins.
  Entry* best = nullptr;
  const containment::VarMapping* best_sigma = nullptr;
  for (const auto& match : probe.contained) {
    if (match.outcome.mappings.empty()) continue;
    auto it = live_.find(match.stored_id);
    if (it == live_.end()) continue;
    if (best == nullptr || it->second.view.rows.size() <
                               best->view.rows.size()) {
      best = &it->second;
      best_sigma = &match.outcome.mappings[0];
    }
  }

  if (best != nullptr) {
    ++stats_.hits;
    best->last_used = clock_;
    ++best->hits;
    rewriting::ExecutionReport report = rewriting::AnswerWithView(
        q, best->view, *best_sigma, *graph_, *dict_);
    report.view_id = best->stored_id;
    if (!options_.skip_admission_on_hit) Admit(q, report);
    return report;
  }

  ++stats_.misses;
  rewriting::ExecutionReport report =
      rewriting::AnswerFromGraph(q, *graph_, *dict_);
  Admit(q, report);
  return report;
}

void SemanticCache::Admit(const query::BgpQuery& q,
                          const rewriting::ExecutionReport& answer) {
  if (q.empty()) return;
  if (options_.capacity_rows != 0 &&
      answer.answers.size() > options_.capacity_rows) {
    return;  // the single result set alone would bust the budget
  }
  if (options_.evict_subsumed_on_admit) {
    for (std::uint32_t subsumed : index_.FindContainedBy(q)) {
      auto it = live_.find(subsumed);
      if (it == live_.end()) continue;
      stats_.rows_resident -= it->second.view.rows.size();
      (void)index_.Remove(subsumed);
      live_.erase(it);
      ++stats_.evictions;
    }
  }
  auto outcome = index_.Insert(q, clock_);
  if (!outcome.ok()) return;
  if (!outcome->was_new) {
    // Already cached (repeat admission of an equivalent query): refresh.
    auto it = live_.find(outcome->stored_id);
    if (it != live_.end()) it->second.last_used = clock_;
    return;
  }
  Entry entry;
  entry.stored_id = outcome->stored_id;
  entry.view.definition = q;
  entry.view.columns = rewriting::ResolvedProjection(q, *dict_);
  entry.view.rows = answer.answers;
  entry.last_used = clock_;
  stats_.rows_resident += entry.view.rows.size();
  live_.emplace(entry.stored_id, std::move(entry));
  ++stats_.admissions;
  EvictUntilWithinBudget();
}

void SemanticCache::EvictUntilWithinBudget() {
  if (options_.capacity_rows == 0) return;
  while (stats_.rows_resident > options_.capacity_rows && live_.size() > 1) {
    // Select the victim per policy (never the entry just admitted when it is
    // the only one left).
    auto victim = live_.end();
    for (auto it = live_.begin(); it != live_.end(); ++it) {
      if (victim == live_.end()) {
        victim = it;
        continue;
      }
      const Entry& a = it->second;
      const Entry& b = victim->second;
      bool worse = false;
      switch (options_.eviction) {
        case EvictionPolicy::kLru:
          worse = a.last_used < b.last_used;
          break;
        case EvictionPolicy::kLargest:
          worse = a.view.rows.size() > b.view.rows.size();
          break;
        case EvictionPolicy::kLeastHits:
          worse = a.hits < b.hits ||
                  (a.hits == b.hits && a.last_used < b.last_used);
          break;
      }
      if (worse) victim = it;
    }
    if (victim == live_.end()) break;
    stats_.rows_resident -= victim->second.view.rows.size();
    (void)index_.Remove(victim->first);
    live_.erase(victim);
    ++stats_.evictions;
  }
}

void SemanticCache::Invalidate() {
  for (const auto& [stored_id, entry] : live_) {
    (void)entry;
    (void)index_.Remove(stored_id);
  }
  live_.clear();
  stats_.rows_resident = 0;
}

}  // namespace cache
}  // namespace rdfc
