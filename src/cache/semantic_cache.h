#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "index/mv_index.h"
#include "rewriting/rewriter.h"

namespace rdfc {
namespace cache {

/// Eviction policies for the semantic cache.
enum class EvictionPolicy : std::uint8_t {
  kLru,        // least-recently-used entry leaves first
  kLargest,    // largest result set leaves first (keeps many small entries)
  kLeastHits,  // fewest lifetime hits leaves first
};

struct CacheOptions {
  /// Capacity budget in materialised result rows (0 = unbounded).
  std::size_t capacity_rows = 100'000;
  EvictionPolicy eviction = EvictionPolicy::kLru;
  /// When true, a query whose results are derivable from a cached entry
  /// (containment hit) is not admitted itself — the cache stores maximal
  /// entries only, at the price of slower (residual) hits.
  bool skip_admission_on_hit = true;
  /// When true, admitting a query evicts every cached entry it subsumes
  /// (entries W ⊑ q): their answers are derivable from the new entry, so
  /// keeping them only burns budget.  Uses MvIndex::FindContainedBy, which
  /// scans the live entries — enable for small/medium caches.
  bool evict_subsumed_on_admit = false;
};

struct CacheStats {
  std::size_t lookups = 0;
  std::size_t hits = 0;          // answered from a cached entry
  std::size_t misses = 0;        // answered from the base graph
  std::size_t admissions = 0;
  std::size_t evictions = 0;
  std::size_t rows_resident = 0; // current footprint
  double hit_rate() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

/// A semantic query-result cache over an RDF graph (the paper's second
/// motivating application, cf. [22, 56, 69-71] in its related work):
/// cached entries answer not only repeats of the *same* query but any new
/// query *contained* in a cached one — the mv-index makes that lookup
/// O(microseconds) regardless of cache size, which is the paper's pitch.
///
/// Lookup: probe the mv-index for containing entries; on a hit, answer from
/// the cheapest entry's rows (seeded residual evaluation — always exact).
/// On a miss, evaluate against the graph, admit the result, and evict per
/// policy until the row budget holds.  Eviction uses MvIndex::Remove, so
/// the index stays in lockstep with the cache content.
///
/// The graph is assumed immutable while cached entries live (the classic
/// read-mostly caching regime); Invalidate() clears everything for writes.
///
/// Threading: Answer/Invalidate mutate the cache and must be serialized by
/// the caller.  WouldHit and the stats accessors are genuinely read-only
/// (const all the way down to the radix walk) and may run concurrently with
/// each other, but not with the mutators — the cache keeps no internal
/// snapshot versioning; use service::IndexManager when that is needed.
class SemanticCache {
 public:
  SemanticCache(const rdf::Graph* graph, rdf::TermDictionary* dict,
                const CacheOptions& options = {});
  RDFC_DISALLOW_COPY_AND_ASSIGN(SemanticCache);

  /// Answers `q`, consulting and maintaining the cache.
  rewriting::ExecutionReport Answer(const query::BgpQuery& q);

  /// Pure peek: would `q` be answerable from a cached entry right now?
  /// Touches no stats, no LRU clocks, no dictionary state — safe to call
  /// from monitoring/planning threads while the owner is between Answers.
  bool WouldHit(const query::BgpQuery& q) const;

  /// Drops every cached entry (e.g. after a graph update).
  void Invalidate();

  const CacheStats& stats() const { return stats_; }
  std::size_t num_entries() const { return live_.size(); }

 private:
  struct Entry {
    std::uint32_t stored_id = 0;
    rewriting::MaterialisedView view;
    std::uint64_t last_used = 0;
    std::size_t hits = 0;
  };

  void Admit(const query::BgpQuery& q,
             const rewriting::ExecutionReport& answer);
  void EvictUntilWithinBudget();

  const rdf::Graph* graph_;
  rdf::TermDictionary* dict_;
  CacheOptions options_;
  index::MvIndex index_;
  std::unordered_map<std::uint32_t, Entry> live_;  // keyed by stored_id
  CacheStats stats_;
  std::uint64_t clock_ = 0;
};

}  // namespace cache
}  // namespace rdfc
