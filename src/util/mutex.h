#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "util/macros.h"
#include "util/thread_annotations.h"

namespace rdfc {
namespace util {

/// Annotated mutex: std::mutex wrapped as a Clang Thread Safety Analysis
/// capability (DESIGN.md "Static analysis").  All lock-based code outside
/// src/util/ must use Mutex/MutexLock instead of the raw std primitives
/// (rdfc_lint's raw-concurrency rule enforces it), so every guarded member
/// can carry RDFC_GUARDED_BY and the CI clang build proves the lock
/// discipline instead of trusting the comments.
class RDFC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  RDFC_DISALLOW_COPY_AND_ASSIGN(Mutex);

  void Lock() RDFC_ACQUIRE() { mu_.lock(); }
  void Unlock() RDFC_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for util::Mutex — the only way library code takes a Mutex, so
/// every critical section is scoped and the analysis can see its extent.
class RDFC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) RDFC_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RDFC_RELEASE() { mu_->Unlock(); }
  RDFC_DISALLOW_COPY_AND_ASSIGN(MutexLock);

 private:
  Mutex* const mu_;
};

/// Condition variable paired with util::Mutex.  Wait atomically releases and
/// reacquires the mutex, so annotation-wise the caller's critical section is
/// unbroken: Wait requires the mutex held and returns with it held.
class CondVar {
 public:
  CondVar() = default;
  RDFC_DISALLOW_COPY_AND_ASSIGN(CondVar);

  /// Blocks until notified (spurious wakeups possible — always wait in a
  /// `while (!predicate)` loop).  The caller must hold *mu.
  void Wait(Mutex* mu) RDFC_REQUIRES(mu) {
    // Adopt the already-held std::mutex for the duration of the wait, then
    // release the unique_lock's claim without unlocking: ownership returns
    // to the caller's MutexLock exactly as the analysis assumes.
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Blocks until notified or `micros` have elapsed, whichever comes first
  /// (spurious wakeups possible — always re-check the predicate).  The
  /// caller must hold *mu.
  void WaitFor(Mutex* mu, std::uint64_t micros) RDFC_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait_for(lock, std::chrono::microseconds(micros));
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace util
}  // namespace rdfc
