#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

#include "util/failpoint.h"

namespace rdfc {
namespace util {

ThreadPool::ThreadPool(const Options& options)
    : options_{std::max<std::size_t>(options.num_threads, 1),
               options.queue_capacity} {
  threads_.reserve(options_.num_threads);
  for (std::size_t i = 0; i < options_.num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

Status ThreadPool::TrySubmit(Task task) {
  {
    MutexLock lock(&mu_);
    if (shutdown_) {
      return Status::InvalidArgument("thread pool is shut down");
    }
    if (options_.queue_capacity != 0 &&
        queue_.size() >= options_.queue_capacity) {
      return Status::ResourceExhausted(
          "task queue at capacity (" +
          std::to_string(options_.queue_capacity) + ")");
    }
    if (RDFC_FAILPOINT("threadpool.admit")) {
      return Status::ResourceExhausted("failpoint threadpool.admit");
    }
    queue_.push_back(std::move(task));
  }
  work_ready_.NotifyOne();
  return Status::OK();
}

void ThreadPool::Shutdown() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_ready_.NotifyAll();
  // Every caller serializes on join_mu_ and leaves only once the workers are
  // gone: the first arrival joins, later (or concurrent) arrivals block on
  // the lock until the join is complete, then see joined_ and return.
  MutexLock join_lock(&join_mu_);
  if (joined_) return;
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  joined_ = true;
}

std::size_t ThreadPool::queue_depth() const {
  MutexLock lock(&mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop(std::size_t worker_index) {
  for (;;) {
    Task task;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && queue_.empty()) work_ready_.Wait(&mu_);
      if (queue_.empty()) return;  // shutdown_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task(worker_index);
  }
}

}  // namespace util
}  // namespace rdfc
