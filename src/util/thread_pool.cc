#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

#include "util/failpoint.h"

namespace rdfc {
namespace util {

ThreadPool::ThreadPool(const Options& options)
    : options_{std::max<std::size_t>(options.num_threads, 1),
               options.queue_capacity} {
  threads_.reserve(options_.num_threads);
  for (std::size_t i = 0; i < options_.num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

Status ThreadPool::TrySubmit(Task task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return Status::InvalidArgument("thread pool is shut down");
    }
    if (options_.queue_capacity != 0 &&
        queue_.size() >= options_.queue_capacity) {
      return Status::ResourceExhausted(
          "task queue at capacity (" +
          std::to_string(options_.queue_capacity) + ")");
    }
    if (RDFC_FAILPOINT("threadpool.admit")) {
      return Status::ResourceExhausted("failpoint threadpool.admit");
    }
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
  return Status::OK();
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
}

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop(std::size_t worker_index) {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task(worker_index);
  }
}

}  // namespace util
}  // namespace rdfc
