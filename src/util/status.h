#pragma once

#include <string>
#include <utility>
#include <variant>

#include "util/macros.h"

namespace rdfc {
namespace util {

/// Error taxonomy for the library.  Kept deliberately small; the message
/// string carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kNotFound,
  kOutOfRange,
  kUnsupported,
  kInternal,
  /// Admission control: a bounded queue/pool is at capacity and the request
  /// was shed rather than blocking (service-layer overload semantics).
  kResourceExhausted,
  /// The request's deadline passed before the work could start or finish.
  kDeadlineExceeded,
};

/// Returned by operations that can fail without a payload.  Mirrors the
/// RocksDB/Arrow convention: no exceptions cross library boundaries.
///
/// The class itself is [[nodiscard]]: a caller that drops a Status on the
/// floor is a compile-time warning everywhere and an error under
/// RDFC_WERROR (CI).  Use RDFC_RETURN_NOT_OK or branch on ok().
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "ParseError: unexpected token".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-error holder.  `value()` aborts if the result holds an error, so
/// callers either branch on `ok()` or use RDFC_ASSIGN_OR_RETURN.  Like
/// Status, the type is [[nodiscard]]: ignoring a Result silently drops both
/// the payload and the error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : payload_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : payload_(std::move(status)) {    // NOLINT(runtime/explicit)
    RDFC_CHECK(!std::get<Status>(payload_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    // get_if (not ok() + get) so GCC's flow analysis can see that the error
    // alternative is only read when it is the engaged one; the branchy form
    // trips -Wmaybe-uninitialized at -O2 when inlined into callers.
    static const Status ok_status = Status::OK();
    const Status* error = std::get_if<Status>(&payload_);
    return error == nullptr ? ok_status : *error;
  }

  T& value() & {
    RDFC_CHECK(ok());
    return std::get<T>(payload_);
  }
  const T& value() const& {
    RDFC_CHECK(ok());
    return std::get<T>(payload_);
  }
  T&& value() && {
    RDFC_CHECK(ok());
    return std::move(std::get<T>(payload_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace util
}  // namespace rdfc

#define RDFC_RETURN_NOT_OK(expr)              \
  do {                                        \
    ::rdfc::util::Status _st = (expr);        \
    if (!_st.ok()) return _st;                \
  } while (0)

#define RDFC_CONCAT_IMPL(x, y) x##y
#define RDFC_CONCAT(x, y) RDFC_CONCAT_IMPL(x, y)

#define RDFC_ASSIGN_OR_RETURN(lhs, expr)                           \
  auto RDFC_CONCAT(_result_, __LINE__) = (expr);                   \
  if (!RDFC_CONCAT(_result_, __LINE__).ok())                       \
    return RDFC_CONCAT(_result_, __LINE__).status();               \
  lhs = std::move(RDFC_CONCAT(_result_, __LINE__)).value()
