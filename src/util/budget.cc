#include "util/budget.h"

#include "util/failpoint.h"

namespace rdfc {
namespace util {

ProbeBudget ProbeBudget::AfterMicros(double micros) {
  return AtDeadline(Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double, std::micro>(micros)));
}

bool ProbeBudget::PollSlow() {
  if (RDFC_FAILPOINT("budget.expire")) {
    exhausted_ = true;
    return true;
  }
  if (has_deadline_ && Clock::now() >= deadline_) {
    exhausted_ = true;
    return true;
  }
  return false;
}

}  // namespace util
}  // namespace rdfc
