#include "util/budget.h"

#include "util/failpoint.h"

namespace rdfc {
namespace util {

ProbeBudget ProbeBudget::AfterMicros(double micros) {
  return AtDeadline(Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double, std::micro>(micros)));
}

bool ProbeBudget::PollSlow() {
  if (RDFC_FAILPOINT("budget.expire")) {
    Expire();
    return true;
  }
  if (shared_ != nullptr) {
    // Flush this walker's step delta into the pool and enforce the cap
    // against the pooled total: a probe fanned across N shards spends one
    // budget, not N.  Remote expiry (a sibling tripping deadline or cap)
    // propagates here too, within one poll interval.
    const std::uint64_t pooled =
        shared_->steps_.fetch_add(steps_ - flushed_steps_,
                                  std::memory_order_relaxed) +
        (steps_ - flushed_steps_);
    flushed_steps_ = steps_;
    if (shared_->max_steps_ != 0 && pooled > shared_->max_steps_) {
      Expire();
      return true;
    }
    if (shared_->expired_.load(std::memory_order_relaxed)) {
      exhausted_ = true;
      return true;
    }
  }
  if (has_deadline_ && Clock::now() >= deadline_) {
    Expire();
    return true;
  }
  return false;
}

}  // namespace util
}  // namespace rdfc
