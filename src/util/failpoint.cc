#include "util/failpoint.h"

#ifdef RDFC_FAILPOINTS

#include <cstdlib>

namespace rdfc {
namespace util {

namespace {

/// FNV-1a over the site name; XORed into the configure seed so every site
/// gets an independent, reproducible PRNG stream.
std::uint64_t SiteHash(const std::string& site) {
  std::uint64_t hash = 0xCBF29CE484222325ull;
  for (const char c : site) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ull;
  }
  return hash;
}

}  // namespace

FailpointRegistry& FailpointRegistry::Instance() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

Status FailpointRegistry::Configure(const std::string& spec,
                                    std::uint64_t seed) {
  MutexLock lock(&mu_);
  sites_.clear();
  seed_ = seed;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("failpoint entry needs site=prob: " +
                                     entry);
    }
    const std::string site = entry.substr(0, eq);
    char* parse_end = nullptr;
    const double prob = std::strtod(entry.c_str() + eq + 1, &parse_end);
    if (parse_end == entry.c_str() + eq + 1 || *parse_end != '\0' ||
        prob < 0.0 || prob > 1.0) {
      return Status::InvalidArgument("failpoint probability must be in [0,1]: " +
                                     entry);
    }
    Site site_state;
    site_state.probability = prob;
    site_state.engine.seed(seed ^ SiteHash(site));
    sites_[site] = std::move(site_state);
  }
  return Status::OK();
}

void FailpointRegistry::Reset() {
  MutexLock lock(&mu_);
  sites_.clear();
}

bool FailpointRegistry::ShouldFail(const char* site) {
  MutexLock lock(&mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    // Track evaluations of unconfigured sites too, so schedules can assert
    // a site was reached even when it never fires.
    Site fresh;
    fresh.engine.seed(seed_ ^ SiteHash(site));
    it = sites_.emplace(site, std::move(fresh)).first;
  }
  Site& s = it->second;
  ++s.evaluated;
  if (s.probability <= 0.0) return false;
  const bool fire =
      std::uniform_real_distribution<double>(0.0, 1.0)(s.engine) <
      s.probability;
  if (fire) ++s.fired;
  return fire;
}

std::uint64_t FailpointRegistry::FiredCount(const std::string& site) const {
  MutexLock lock(&mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fired;
}

std::uint64_t FailpointRegistry::EvaluatedCount(
    const std::string& site) const {
  MutexLock lock(&mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.evaluated;
}

}  // namespace util
}  // namespace rdfc

#endif  // RDFC_FAILPOINTS
