// Copyright-style note: this project follows the Google C++ style guide with
// the Arrow relaxations (90-column lines, structs for simple aggregates).
#pragma once

#include <cstdio>
#include <cstdlib>

// Fatal invariant check, enabled in all build types.  Library code uses
// RDFC_CHECK only for programmer errors (violated preconditions), never for
// data-dependent failures, which are reported through util::Status instead.
#define RDFC_CHECK(cond)                                                      \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "RDFC_CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                                          \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#ifdef NDEBUG
#define RDFC_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define RDFC_DCHECK(cond) RDFC_CHECK(cond)
#endif

#define RDFC_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;           \
  TypeName& operator=(const TypeName&) = delete
