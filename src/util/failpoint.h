#pragma once

// Deterministic fault injection (DESIGN.md "Resilience").
//
// A failpoint is a named site in production code where a fault can be
// injected under test: `if (RDFC_FAILPOINT("persistence.crash")) return
// util::Status::Internal(...)`.  Sites are compiled out entirely unless the
// build defines RDFC_FAILPOINTS (CMake option of the same name) — the macro
// folds to the literal `false` and the optimiser removes the branch, so
// release binaries carry zero overhead and zero attack surface.
//
// When compiled in, each site draws from its own PRNG stream seeded with
// `configure_seed ^ fnv(site_name)`: whether the k-th evaluation of a given
// site fires depends only on the configured seed and k, never on thread
// interleaving with other sites.  `rdfc_fuzz --failpoints` drives schedules
// through Configure().

#include <cstdint>
#include <string>

#include "util/status.h"

#ifdef RDFC_FAILPOINTS

#include <random>
#include <unordered_map>

#include "util/macros.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rdfc {
namespace util {

/// Process-wide registry of failpoint sites.  Thread-safe; the lock is
/// acceptable because failpoint builds are test builds.
class FailpointRegistry {
 public:
  static FailpointRegistry& Instance();
  RDFC_DISALLOW_COPY_AND_ASSIGN(FailpointRegistry);

  /// Installs a schedule: a comma-separated list of `site=probability`
  /// entries (probability in [0,1]; 1 fires every evaluation).  Replaces
  /// any previous schedule and resets all counters.  An empty spec disables
  /// every site.
  [[nodiscard]] Status Configure(const std::string& spec, std::uint64_t seed)
      RDFC_EXCLUDES(mu_);

  /// Disables every site and clears counters.
  void Reset() RDFC_EXCLUDES(mu_);

  /// Evaluates the site: true when the schedule says this evaluation fails.
  /// Unconfigured sites never fire but still count evaluations.
  bool ShouldFail(const char* site) RDFC_EXCLUDES(mu_);

  /// Times ShouldFail returned true / was called for `site` since the last
  /// Configure/Reset.  For assertions in the failpoint stress suite.
  std::uint64_t FiredCount(const std::string& site) const RDFC_EXCLUDES(mu_);
  std::uint64_t EvaluatedCount(const std::string& site) const
      RDFC_EXCLUDES(mu_);

 private:
  FailpointRegistry() = default;

  struct Site {
    double probability = 0.0;
    std::mt19937_64 engine;
    std::uint64_t evaluated = 0;
    std::uint64_t fired = 0;
  };

  mutable Mutex mu_;
  std::uint64_t seed_ RDFC_GUARDED_BY(mu_) = 0;
  std::unordered_map<std::string, Site> sites_ RDFC_GUARDED_BY(mu_);
};

}  // namespace util
}  // namespace rdfc

#define RDFC_FAILPOINT(site) \
  (::rdfc::util::FailpointRegistry::Instance().ShouldFail(site))

#else  // !RDFC_FAILPOINTS

#define RDFC_FAILPOINT(site) false

#endif  // RDFC_FAILPOINTS
