#pragma once

#include <chrono>

namespace rdfc {
namespace util {

/// Monotonic wall-clock stopwatch.  The bench harnesses report milliseconds
/// to match the units of the paper's figures.
class Timer {
 public:
  Timer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace util
}  // namespace rdfc
