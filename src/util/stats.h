#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace rdfc {
namespace util {

/// Streaming univariate statistics (Welford's online algorithm).  The bench
/// harness uses this to report the mean and a 95 % confidence interval for
/// each measurement group, matching the error bars of the paper's Figure 4.
class StreamingStats {
 public:
  void Add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;

  /// Half-width of the normal-approximation 95 % confidence interval
  /// (1.96 * stderr).  0 for fewer than two samples.
  double ci95_halfwidth() const;

  /// Merges another accumulator into this one (parallel Welford merge).
  void Merge(const StreamingStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width bucketing used by the figure harnesses, e.g. query sizes
/// grouped as 1-5, 6-10, 11-15, ... (Figures 3b and 4) or index sizes grouped
/// per 5,000 vertices (Figure 3a).
class BucketedStats {
 public:
  /// `width` is the bucket width; bucket i covers [lo + i*width, lo+(i+1)*width).
  explicit BucketedStats(std::int64_t width, std::int64_t lo = 0)
      : width_(width), lo_(lo) {}

  void Add(std::int64_t key, double value);

  /// Buckets that received at least one sample, in increasing key order.
  struct Bucket {
    std::int64_t lo;  // inclusive
    std::int64_t hi;  // inclusive (lo + width - 1)
    StreamingStats stats;
  };
  std::vector<Bucket> NonEmptyBuckets() const;

  /// Renders a label such as "6-10" for the bucket containing `key`.
  std::string LabelFor(std::int64_t key) const;

 private:
  std::int64_t width_;
  std::int64_t lo_;
  std::map<std::int64_t, StreamingStats> buckets_;  // keyed by bucket index
};

/// Fixed-bucket latency histogram over non-negative microsecond values, used
/// by service::ServiceMetrics to report p50/p95/p99 per pipeline stage
/// (index filter vs. NP verification) without storing raw samples.
///
/// Power-of-two boundaries: bucket 0 covers [0, 1) µs and bucket i >= 1
/// covers [2^(i-1), 2^i) µs; the last bucket additionally absorbs overflow.
/// 40 buckets span [0, ~2^39 µs ≈ 6 days) — comfortably past any probe.
/// The fixed layout is what makes histograms mergeable across worker shards
/// and process snapshots with no rebinning.
class LatencyHistogram {
 public:
  static constexpr std::size_t kNumBuckets = 40;

  /// Bucket receiving `micros` (negatives clamp to bucket 0).
  static std::size_t BucketIndex(double micros);
  /// Inclusive lower bound of `bucket` in µs.
  static double BucketLowerBound(std::size_t bucket);
  /// Exclusive upper bound of `bucket` in µs (the last bucket reports twice
  /// its lower bound, though it absorbs all overflow).
  static double BucketUpperBound(std::size_t bucket);

  void Add(double micros);

  /// Bulk-adds `count` samples into `bucket`, accounting their sum as the
  /// bucket midpoint (used when merging atomic per-worker shards, which keep
  /// only counts).  Mean becomes approximate; percentiles are unaffected.
  void AddBucketCount(std::size_t bucket, std::uint64_t count);

  void Merge(const LatencyHistogram& other);

  std::uint64_t count() const { return count_; }
  double sum_micros() const { return sum_micros_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_micros_ / static_cast<double>(count_);
  }

  /// Value at percentile `p` in [0, 100], linearly interpolated inside the
  /// bucket containing the rank (exact to within one bucket width).  0 when
  /// empty.
  double Percentile(double p) const;

  const std::array<std::uint64_t, kNumBuckets>& bucket_counts() const {
    return buckets_;
  }

 private:
  std::array<std::uint64_t, kNumBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_micros_ = 0.0;
};

}  // namespace util
}  // namespace rdfc
