#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace rdfc {
namespace util {

/// Streaming univariate statistics (Welford's online algorithm).  The bench
/// harness uses this to report the mean and a 95 % confidence interval for
/// each measurement group, matching the error bars of the paper's Figure 4.
class StreamingStats {
 public:
  void Add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;

  /// Half-width of the normal-approximation 95 % confidence interval
  /// (1.96 * stderr).  0 for fewer than two samples.
  double ci95_halfwidth() const;

  /// Merges another accumulator into this one (parallel Welford merge).
  void Merge(const StreamingStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width bucketing used by the figure harnesses, e.g. query sizes
/// grouped as 1-5, 6-10, 11-15, ... (Figures 3b and 4) or index sizes grouped
/// per 5,000 vertices (Figure 3a).
class BucketedStats {
 public:
  /// `width` is the bucket width; bucket i covers [lo + i*width, lo+(i+1)*width).
  explicit BucketedStats(std::int64_t width, std::int64_t lo = 0)
      : width_(width), lo_(lo) {}

  void Add(std::int64_t key, double value);

  /// Buckets that received at least one sample, in increasing key order.
  struct Bucket {
    std::int64_t lo;  // inclusive
    std::int64_t hi;  // inclusive (lo + width - 1)
    StreamingStats stats;
  };
  std::vector<Bucket> NonEmptyBuckets() const;

  /// Renders a label such as "6-10" for the bucket containing `key`.
  std::string LabelFor(std::int64_t key) const;

 private:
  std::int64_t width_;
  std::int64_t lo_;
  std::map<std::int64_t, StreamingStats> buckets_;  // keyed by bucket index
};

}  // namespace util
}  // namespace rdfc
