#pragma once

// Clang Thread Safety Analysis attributes (DESIGN.md "Static analysis").
//
// These macros wrap the `-Wthread-safety` attribute family so the lock
// discipline of the concurrent probe path — which mutex guards which member,
// which functions require or must not hold a lock — is stated in the
// declarations and *proved at compile time* by the CI clang build
// (`-Wthread-safety -Wthread-safety-beta -Werror`).  On non-Clang compilers
// every macro expands to nothing, so GCC builds are unaffected.
//
// Conventions:
//   - every member written under a util::Mutex carries RDFC_GUARDED_BY(mu_)
//     (rdfc_lint's annotation-parity rule cross-checks this against the .cc);
//   - private helpers that assume the caller holds a lock are annotated
//     RDFC_REQUIRES(mu_) instead of re-locking;
//   - public entry points that take a lock internally are annotated
//     RDFC_EXCLUDES(mu_) so re-entrant self-deadlocks are compile errors;
//   - atomics published lock-free (hazard slots, snapshot pointers, metric
//     shards) are deliberately NOT guarded — their contract is documented at
//     the declaration and checked dynamically by the TSan CI job.

#if defined(__clang__)
#define RDFC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define RDFC_THREAD_ANNOTATION(x)
#endif

/// Declares a type to be a lockable capability ("mutex").
#define RDFC_CAPABILITY(x) RDFC_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor (util::MutexLock).
#define RDFC_SCOPED_CAPABILITY RDFC_THREAD_ANNOTATION(scoped_lockable)

/// The annotated member may only be read or written while holding `x`.
#define RDFC_GUARDED_BY(x) RDFC_THREAD_ANNOTATION(guarded_by(x))

/// The annotated pointer may be dereferenced only while holding `x` (the
/// pointer itself is unguarded).
#define RDFC_PT_GUARDED_BY(x) RDFC_THREAD_ANNOTATION(pt_guarded_by(x))

/// The annotated function acquires / releases the listed capabilities.
#define RDFC_ACQUIRE(...) RDFC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RDFC_RELEASE(...) RDFC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The caller must hold the listed capabilities when calling the annotated
/// function (locked-scope helpers, e.g. IndexManager::ReclaimLocked).
#define RDFC_REQUIRES(...) RDFC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The caller must NOT hold the listed capabilities (the function acquires
/// them itself); turns re-entrant self-deadlock into a compile error.
#define RDFC_EXCLUDES(...) RDFC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// The annotated function returns a reference to the named capability.
#define RDFC_RETURN_CAPABILITY(x) RDFC_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for functions whose locking is deliberately outside the
/// analysis (e.g. lock adapters).  Use sparingly, with a comment saying why.
#define RDFC_NO_THREAD_SAFETY_ANALYSIS \
  RDFC_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Marks a function as part of the lock-free read path: it may take no lock
/// and perform no allocation (rdfc_lint's alloc-in-readpath rule checks the
/// body of every function carrying this marker).  Expands to nothing on all
/// compilers — it is a machine-checked comment, placed like a trailing
/// attribute: `std::size_t size() const RDFC_READPATH { ... }`.
#define RDFC_READPATH
