#include "util/stats.h"

#include <cmath>

#include "util/macros.h"

namespace rdfc {
namespace util {

void StreamingStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

double StreamingStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

double StreamingStats::ci95_halfwidth() const {
  if (count_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

void StreamingStats::Merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(count_);
  const auto m = static_cast<double>(other.count_);
  mean_ += delta * m / (n + m);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  count_ += other.count_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

void BucketedStats::Add(std::int64_t key, double value) {
  RDFC_DCHECK(width_ > 0);
  const std::int64_t idx = (key - lo_) / width_;
  buckets_[idx].Add(value);
}

std::vector<BucketedStats::Bucket> BucketedStats::NonEmptyBuckets() const {
  std::vector<Bucket> out;
  out.reserve(buckets_.size());
  for (const auto& [idx, stats] : buckets_) {
    Bucket b;
    b.lo = lo_ + idx * width_;
    b.hi = b.lo + width_ - 1;
    b.stats = stats;
    out.push_back(b);
  }
  return out;
}

std::string BucketedStats::LabelFor(std::int64_t key) const {
  const std::int64_t idx = (key - lo_) / width_;
  const std::int64_t lo = lo_ + idx * width_;
  return std::to_string(lo) + "-" + std::to_string(lo + width_ - 1);
}

std::size_t LatencyHistogram::BucketIndex(double micros) {
  if (!(micros >= 1.0)) return 0;  // negatives and NaN clamp to bucket 0
  int exp = 0;
  // frexp: micros = m * 2^exp with m in [0.5, 1), so 2^(exp-1) <= micros
  // < 2^exp — exactly bucket `exp` in our layout.
  (void)std::frexp(micros, &exp);
  const auto bucket = static_cast<std::size_t>(exp);
  return bucket < kNumBuckets ? bucket : kNumBuckets - 1;
}

double LatencyHistogram::BucketLowerBound(std::size_t bucket) {
  RDFC_DCHECK(bucket < kNumBuckets);
  return bucket == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(bucket) - 1);
}

double LatencyHistogram::BucketUpperBound(std::size_t bucket) {
  RDFC_DCHECK(bucket < kNumBuckets);
  return std::ldexp(1.0, static_cast<int>(bucket));
}

void LatencyHistogram::Add(double micros) {
  ++buckets_[BucketIndex(micros)];
  ++count_;
  sum_micros_ += micros > 0.0 ? micros : 0.0;
}

void LatencyHistogram::AddBucketCount(std::size_t bucket, std::uint64_t count) {
  RDFC_DCHECK(bucket < kNumBuckets);
  if (count == 0) return;
  buckets_[bucket] += count;
  count_ += count;
  const double midpoint =
      (BucketLowerBound(bucket) + BucketUpperBound(bucket)) / 2.0;
  sum_micros_ += midpoint * static_cast<double>(count);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_micros_ += other.sum_micros_;
}

double LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Rank of the requested sample, 1-based (p50 of 100 samples -> rank 50).
  const double exact_rank = p / 100.0 * static_cast<double>(count_);
  const auto rank =
      static_cast<std::uint64_t>(exact_rank < 1.0 ? 1.0 : exact_rank + 0.5);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    if (cumulative + buckets_[i] >= rank) {
      // Linear interpolation inside the bucket.
      const double within =
          static_cast<double>(rank - cumulative) /
          static_cast<double>(buckets_[i]);
      const double lo = BucketLowerBound(i);
      return lo + within * (BucketUpperBound(i) - lo);
    }
    cumulative += buckets_[i];
  }
  return BucketUpperBound(kNumBuckets - 1);
}

}  // namespace util
}  // namespace rdfc
