#include "util/stats.h"

#include <cmath>

#include "util/macros.h"

namespace rdfc {
namespace util {

void StreamingStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

double StreamingStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

double StreamingStats::ci95_halfwidth() const {
  if (count_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

void StreamingStats::Merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(count_);
  const auto m = static_cast<double>(other.count_);
  mean_ += delta * m / (n + m);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  count_ += other.count_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

void BucketedStats::Add(std::int64_t key, double value) {
  RDFC_DCHECK(width_ > 0);
  const std::int64_t idx = (key - lo_) / width_;
  buckets_[idx].Add(value);
}

std::vector<BucketedStats::Bucket> BucketedStats::NonEmptyBuckets() const {
  std::vector<Bucket> out;
  out.reserve(buckets_.size());
  for (const auto& [idx, stats] : buckets_) {
    Bucket b;
    b.lo = lo_ + idx * width_;
    b.hi = b.lo + width_ - 1;
    b.stats = stats;
    out.push_back(b);
  }
  return out;
}

std::string BucketedStats::LabelFor(std::int64_t key) const {
  const std::int64_t idx = (key - lo_) / width_;
  const std::int64_t lo = lo_ + idx * width_;
  return std::to_string(lo) + "-" + std::to_string(lo + width_ - 1);
}

}  // namespace util
}  // namespace rdfc
