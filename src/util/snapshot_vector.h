#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "util/macros.h"
#include "util/thread_annotations.h"

namespace rdfc {
namespace util {

/// Append-only vector safe for one writer and many concurrent readers.
///
/// The service layer shares one TermDictionary between probe workers (pure
/// readers) and the view-mutation path (a single serialized writer); a plain
/// std::vector cannot back that sharing because push_back reallocates the
/// buffer out from under concurrent readers.  SnapshotVector stores elements
/// in fixed-size chunks that are never moved once allocated, so a reader
/// holding an index obtained before the writer's latest size publication can
/// dereference it forever without synchronisation beyond the publication
/// itself.
///
/// Threading contract (DESIGN.md "Service layer"):
///   - exactly one thread calls PushBack / EnsureSize / MutableAt at a time
///     (the writer; external serialisation required);
///   - any number of threads may concurrently call size() and At(i) for
///     i < n, provided n was observed via size() (acquire) or via any
///     happens-before edge downstream of the writer publishing size >= n
///     (e.g. an IndexManager snapshot acquisition);
///   - elements are written before the size covering them is released, so
///     At(i) never observes a half-constructed element.
///
/// Chunk-pointer tables are grown by copy-and-publish; superseded tables are
/// retired and reclaimed only in the destructor (O(log n) tables of pointer
/// arrays — bytes, not elements), which is what makes the reader side
/// lock-free and ABA-free.
template <typename T>
class SnapshotVector {
 public:
  static constexpr std::size_t kChunkShift = 12;  // 4096 elements per chunk
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
  static constexpr std::size_t kChunkMask = kChunkSize - 1;

  SnapshotVector() {
    table_.store(NewTable(kInitialChunkSlots), std::memory_order_relaxed);
  }

  ~SnapshotVector() {
    Table* table = table_.load(std::memory_order_relaxed);
    for (T* chunk : table->chunks) delete[] chunk;
    delete table;
    for (Table* retired : retired_tables_) delete retired;
  }

  RDFC_DISALLOW_COPY_AND_ASSIGN(SnapshotVector);

  /// Number of published elements.  Acquire: every element below the
  /// returned size is fully written and safe to read.
  std::size_t size() const RDFC_READPATH {
    return size_.load(std::memory_order_acquire);
  }

  /// Reader access.  `i` must be below a size() value the calling thread has
  /// observed (directly or through a downstream happens-before edge).
  const T& At(std::size_t i) const RDFC_READPATH {
    const Table* table = table_.load(std::memory_order_acquire);
    return table->chunks[i >> kChunkShift][i & kChunkMask];
  }

  /// Writer: appends one element and publishes the new size.
  void PushBack(T value) {
    const std::size_t n = size_.load(std::memory_order_relaxed);
    *WriterSlot(n) = std::move(value);
    size_.store(n + 1, std::memory_order_release);
  }

  /// Writer: grows to at least `n` elements, default-constructed.  Used with
  /// MutableAt for element types that are written in place after publication
  /// (e.g. std::atomic slots that start at a sentinel).
  void EnsureSize(std::size_t n) {
    const std::size_t current = size_.load(std::memory_order_relaxed);
    if (n <= current) return;
    for (std::size_t i = current; i < n; i += kChunkSize) {
      (void)WriterSlot(i);  // allocates the chunk covering i
    }
    (void)WriterSlot(n - 1);
    size_.store(n, std::memory_order_release);
  }

  /// Writer: in-place access to an already-published slot.  Only meaningful
  /// for element types whose concurrent mutation is itself synchronised
  /// (std::atomic<...>); for plain types, published slots are immutable.
  T& MutableAt(std::size_t i) {
    Table* table = table_.load(std::memory_order_relaxed);
    return table->chunks[i >> kChunkShift][i & kChunkMask];
  }

 private:
  static constexpr std::size_t kInitialChunkSlots = 64;

  struct Table {
    std::vector<T*> chunks;  // fixed length per table; slots set at most once
  };

  static Table* NewTable(std::size_t slots) {
    auto* table = new Table();  // owned via table_/retired_tables_
    table->chunks.assign(slots, nullptr);
    return table;
  }

  /// Returns the writable slot for element `n`, allocating its chunk (and
  /// growing the chunk table) as needed.  Writer-only.
  T* WriterSlot(std::size_t n) {
    const std::size_t chunk = n >> kChunkShift;
    Table* table = table_.load(std::memory_order_relaxed);
    if (chunk >= table->chunks.size()) {
      std::size_t slots = table->chunks.size() * 2;
      while (slots <= chunk) slots *= 2;
      Table* grown = NewTable(slots);
      for (std::size_t i = 0; i < table->chunks.size(); ++i) {
        grown->chunks[i] = table->chunks[i];
      }
      retired_tables_.push_back(table);
      // Release so a reader that later observes the published size also
      // observes the fully-copied table contents.
      table_.store(grown, std::memory_order_release);
      table = grown;
    }
    if (table->chunks[chunk] == nullptr) {
      table->chunks[chunk] = new T[kChunkSize]();  // freed in the destructor
    }
    return &table->chunks[chunk][n & kChunkMask];
  }

  std::atomic<std::size_t> size_{0};
  std::atomic<Table*> table_{nullptr};
  std::vector<Table*> retired_tables_;  // writer-only; freed in dtor
};

}  // namespace util
}  // namespace rdfc
