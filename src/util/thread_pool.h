#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/macros.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace rdfc {
namespace util {

/// Bounded-queue worker pool — the only place in the library (besides the
/// service layer built on top of it) that spawns threads.  Producers submit
/// through TrySubmit, which never blocks: when the admission queue is full it
/// returns Status::ResourceExhausted and the caller decides what to shed
/// (the containment service turns that into an overload response).
///
/// Tasks receive the index of the worker running them (0-based, stable for
/// the pool's lifetime), which callers use for per-worker state: metrics
/// shards, snapshot reader slots — anything that must be contention-free on
/// the hot path.
class ThreadPool {
 public:
  /// Task signature; `worker_index` is in [0, num_threads()).
  using Task = std::function<void(std::size_t worker_index)>;

  struct Options {
    std::size_t num_threads = 4;     // clamped to >= 1
    std::size_t queue_capacity = 1024;  // pending tasks; 0 = unbounded
  };

  explicit ThreadPool(const Options& options);
  ~ThreadPool();  // Shutdown()
  RDFC_DISALLOW_COPY_AND_ASSIGN(ThreadPool);

  /// Enqueues `task` without ever blocking the caller.  Returns
  /// ResourceExhausted when the bounded queue is at capacity and
  /// InvalidArgument after Shutdown; the task runs iff OK is returned.
  [[nodiscard]] Status TrySubmit(Task task) RDFC_EXCLUDES(mu_);

  /// Stops intake, drains every already-accepted task, and joins the
  /// workers.  Idempotent and safe to call from several threads at once:
  /// every caller blocks until the workers have actually exited (a second
  /// concurrent caller used to return while the first was still joining,
  /// which let a racing destructor free the pool under live workers).
  void Shutdown() RDFC_EXCLUDES(mu_, join_mu_);

  std::size_t num_threads() const { return options_.num_threads; }

  /// Tasks accepted but not yet started (point-in-time; advisory only).
  std::size_t queue_depth() const RDFC_EXCLUDES(mu_);

 private:
  void WorkerLoop(std::size_t worker_index) RDFC_EXCLUDES(mu_);

  const Options options_;  // num_threads clamped in the constructor
  mutable Mutex mu_;
  CondVar work_ready_;
  std::deque<Task> queue_ RDFC_GUARDED_BY(mu_);
  bool shutdown_ RDFC_GUARDED_BY(mu_) = false;

  /// Serializes the join phase of Shutdown.  Acquired after (never inside)
  /// mu_; WorkerLoop takes only mu_, so joining under join_mu_ cannot
  /// deadlock against the workers it waits for.
  Mutex join_mu_;
  std::vector<std::thread> threads_ RDFC_GUARDED_BY(join_mu_);
  bool joined_ RDFC_GUARDED_BY(join_mu_) = false;
};

}  // namespace util
}  // namespace rdfc
