#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/macros.h"
#include "util/status.h"

namespace rdfc {
namespace util {

/// Bounded-queue worker pool — the only place in the library (besides the
/// service layer built on top of it) that spawns threads.  Producers submit
/// through TrySubmit, which never blocks: when the admission queue is full it
/// returns Status::ResourceExhausted and the caller decides what to shed
/// (the containment service turns that into an overload response).
///
/// Tasks receive the index of the worker running them (0-based, stable for
/// the pool's lifetime), which callers use for per-worker state: metrics
/// shards, snapshot reader slots — anything that must be contention-free on
/// the hot path.
class ThreadPool {
 public:
  /// Task signature; `worker_index` is in [0, num_threads()).
  using Task = std::function<void(std::size_t worker_index)>;

  struct Options {
    std::size_t num_threads = 4;     // clamped to >= 1
    std::size_t queue_capacity = 1024;  // pending tasks; 0 = unbounded
  };

  explicit ThreadPool(const Options& options);
  ~ThreadPool();  // Shutdown()
  RDFC_DISALLOW_COPY_AND_ASSIGN(ThreadPool);

  /// Enqueues `task` without ever blocking the caller.  Returns
  /// ResourceExhausted when the bounded queue is at capacity and
  /// InvalidArgument after Shutdown; the task runs iff OK is returned.
  [[nodiscard]] Status TrySubmit(Task task);

  /// Stops intake, drains every already-accepted task, and joins the
  /// workers.  Idempotent; also called by the destructor.
  void Shutdown();

  std::size_t num_threads() const { return threads_.size(); }

  /// Tasks accepted but not yet started (point-in-time; advisory only).
  std::size_t queue_depth() const;

 private:
  void WorkerLoop(std::size_t worker_index);

  const Options options_;
  mutable std::mutex mu_;
  std::condition_variable work_ready_;
  std::deque<Task> queue_;
  std::vector<std::thread> threads_;
  bool shutdown_ = false;
};

}  // namespace util
}  // namespace rdfc
