#pragma once

#include <chrono>
#include <cstdint>

#include "util/thread_annotations.h"

namespace rdfc {
namespace util {

/// Cooperative cancellation token for probe-side work (DESIGN.md
/// "Resilience").  A budget couples a monotonic deadline with a step
/// counter; the hot loops of the containment pipeline — the radix walks,
/// the f-graph matcher, the NP homomorphism search — poll Exhausted() at
/// their loop heads and unwind when it trips, reporting a *degraded* result
/// instead of running past the caller's patience.
///
/// The poll is designed to be cheap enough for per-state use: every call is
/// one increment plus two compares, and the clock is consulted only every
/// kPollInterval steps (steady_clock::now is tens of nanoseconds — fine per
/// call at candidate granularity, not per matcher step).  Exhaustion is
/// sticky: once tripped the budget stays exhausted, so late pollers see a
/// consistent verdict.
///
/// A ProbeBudget is owned by exactly one probe (stack-local in the service
/// worker); it is not thread-safe and never shared across requests.
class ProbeBudget {
 public:
  using Clock = std::chrono::steady_clock;

  /// Default construction = unlimited: Exhausted() only counts steps.
  ProbeBudget() = default;

  /// Budget that trips once the monotonic clock reaches `deadline`.
  /// time_point::max() means no deadline (same as default construction).
  static ProbeBudget AtDeadline(Clock::time_point deadline) {
    ProbeBudget b;
    if (deadline != Clock::time_point::max()) {
      b.deadline_ = deadline;
      b.has_deadline_ = true;
    }
    return b;
  }

  /// Budget that trips `micros` microseconds from now.
  static ProbeBudget AfterMicros(double micros);

  /// Optional hard cap on polled steps (0 = uncapped); composes with the
  /// deadline — whichever trips first wins.
  void set_max_steps(std::uint64_t max_steps) { max_steps_ = max_steps; }

  /// Counts one unit of work and reports whether the budget is spent.
  /// Amortised: the clock is read every kPollInterval calls.
  bool Exhausted() RDFC_READPATH {
    if (exhausted_) return true;
    ++steps_;
    if (max_steps_ != 0 && steps_ > max_steps_) {
      exhausted_ = true;
      return true;
    }
    if ((steps_ & (kPollInterval - 1)) != 0) return false;
    return PollSlow();
  }

  /// Sticky verdict without consuming a step — for outer loops that only
  /// need to know whether an inner phase already tripped the budget.
  bool exhausted() const RDFC_READPATH { return exhausted_; }

  /// Forces exhaustion (quarantine short-circuits and tests).
  void Expire() { exhausted_ = true; }

  std::uint64_t steps() const { return steps_; }
  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }

 private:
  static constexpr std::uint64_t kPollInterval = 256;  // power of two

  bool PollSlow();  // clock read + failpoint; out of line to keep Exhausted hot

  Clock::time_point deadline_ = Clock::time_point::max();
  std::uint64_t max_steps_ = 0;
  std::uint64_t steps_ = 0;
  bool has_deadline_ = false;
  bool exhausted_ = false;
};

}  // namespace util
}  // namespace rdfc
