#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "util/thread_annotations.h"

namespace rdfc {
namespace util {

/// Cooperative cancellation token for probe-side work (DESIGN.md
/// "Resilience").  A budget couples a monotonic deadline with a step
/// counter; the hot loops of the containment pipeline — the radix walks,
/// the f-graph matcher, the NP homomorphism search — poll Exhausted() at
/// their loop heads and unwind when it trips, reporting a *degraded* result
/// instead of running past the caller's patience.
///
/// The poll is designed to be cheap enough for per-state use: every call is
/// one increment plus two compares, and the clock is consulted only every
/// kPollInterval steps (steady_clock::now is tens of nanoseconds — fine per
/// call at candidate granularity, not per matcher step).  Exhaustion is
/// sticky: once tripped the budget stays exhausted, so late pollers see a
/// consistent verdict.
///
/// A ProbeBudget is owned by exactly one probe (stack-local in the service
/// worker); the object itself is not thread-safe and never shared across
/// requests.  When one probe fans out across index shards on several pool
/// workers, each walker gets its own forked ProbeBudget attached to one
/// SharedState (below), which pools the step count and the expiry verdict
/// across the walkers — the one-budget-per-probe contract survives the
/// fan-out because the mutable per-walker state stays thread-local.
class ProbeBudget {
 public:
  using Clock = std::chrono::steady_clock;

  /// The pooled half of a fanned-out budget: the deadline/step cap captured
  /// from the origin budget plus an atomic step pool and a sticky expiry
  /// flag every forked walker publishes into and polls.  Lives on the
  /// fan-out caller's frame for the duration of one probe.
  ///
  /// Enforcement is deliberately amortised: walkers sync with the pool only
  /// every kPollInterval local steps, so the cap can overshoot by at most
  /// (walkers x kPollInterval) steps and an expiry propagates within one
  /// poll interval.  Both slops only affect *when* a walk degrades, never
  /// the soundness of the degraded answer (it still only under-reports).
  class SharedState {
   public:
    explicit SharedState(const ProbeBudget& origin)
        : deadline_(origin.deadline_),
          max_steps_(origin.max_steps_),
          has_deadline_(origin.has_deadline_) {
      if (origin.exhausted_) expired_.store(true, std::memory_order_relaxed);
    }
    SharedState(const SharedState&) = delete;
    SharedState& operator=(const SharedState&) = delete;

    /// Steps pooled so far (walkers flush at poll granularity).
    std::uint64_t steps() const {
      return steps_.load(std::memory_order_relaxed);
    }
    bool expired() const { return expired_.load(std::memory_order_relaxed); }

   private:
    friend class ProbeBudget;
    const Clock::time_point deadline_;
    const std::uint64_t max_steps_;
    std::atomic<std::uint64_t> steps_{0};
    std::atomic<bool> expired_{false};
    const bool has_deadline_;
  };

  /// Default construction = unlimited: Exhausted() only counts steps.
  ProbeBudget() = default;

  /// Budget that trips once the monotonic clock reaches `deadline`.
  /// time_point::max() means no deadline (same as default construction).
  static ProbeBudget AtDeadline(Clock::time_point deadline) {
    ProbeBudget b;
    if (deadline != Clock::time_point::max()) {
      b.deadline_ = deadline;
      b.has_deadline_ = true;
    }
    return b;
  }

  /// Budget that trips `micros` microseconds from now.
  static ProbeBudget AfterMicros(double micros);

  /// A per-walker budget attached to `shared` (which must outlive it): the
  /// deadline comes from the shared state, the step cap is enforced against
  /// the pooled count at poll points, and expiry — local or remote — is
  /// published through the shared flag so sibling walkers degrade together.
  static ProbeBudget Forked(SharedState* shared) {
    ProbeBudget b;
    b.shared_ = shared;
    b.deadline_ = shared->deadline_;
    b.has_deadline_ = shared->has_deadline_;
    b.exhausted_ = shared->expired_.load(std::memory_order_relaxed);
    return b;
  }

  /// Flushes any still-unflushed local steps (and a local expiry) into the
  /// pool; a fan-out calls this on each forked budget as its walk finishes
  /// so the origin's Absorb sees every step.
  void Flush() {
    if (shared_ == nullptr) return;
    if (steps_ != flushed_steps_) {
      shared_->steps_.fetch_add(steps_ - flushed_steps_,
                                std::memory_order_relaxed);
      flushed_steps_ = steps_;
    }
    if (exhausted_) shared_->expired_.store(true, std::memory_order_relaxed);
  }

  /// Folds a fan-out's pooled accounting back into this (origin) budget
  /// after every forked walker has finished: steps() absorbs the pooled
  /// count and a shared expiry makes this budget exhausted too, so callers
  /// inspecting the origin budget see the fan-out's verdict.
  void Absorb(const SharedState& shared) {
    steps_ += shared.steps();
    if (shared.expired()) exhausted_ = true;
  }

  /// Optional hard cap on polled steps (0 = uncapped); composes with the
  /// deadline — whichever trips first wins.
  void set_max_steps(std::uint64_t max_steps) { max_steps_ = max_steps; }

  /// Counts one unit of work and reports whether the budget is spent.
  /// Amortised: the clock is read every kPollInterval calls.
  bool Exhausted() RDFC_READPATH {
    if (exhausted_) return true;
    ++steps_;
    if (max_steps_ != 0 && steps_ > max_steps_) {
      exhausted_ = true;
      return true;
    }
    if ((steps_ & (kPollInterval - 1)) != 0) return false;
    return PollSlow();
  }

  /// Sticky verdict without consuming a step — for outer loops that only
  /// need to know whether an inner phase already tripped the budget.
  bool exhausted() const RDFC_READPATH { return exhausted_; }

  /// Forces exhaustion (quarantine short-circuits and tests).  On a forked
  /// budget the expiry propagates to every sibling walker via the pool.
  void Expire() {
    exhausted_ = true;
    if (shared_ != nullptr) {
      shared_->expired_.store(true, std::memory_order_relaxed);
    }
  }

  std::uint64_t steps() const { return steps_; }
  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }

 private:
  static constexpr std::uint64_t kPollInterval = 256;  // power of two

  bool PollSlow();  // clock read + failpoint; out of line to keep Exhausted hot

  Clock::time_point deadline_ = Clock::time_point::max();
  std::uint64_t max_steps_ = 0;
  std::uint64_t steps_ = 0;
  /// Non-null on a forked budget: the fan-out pool this walker flushes its
  /// step count into and polls for remote expiry (see SharedState).
  SharedState* shared_ = nullptr;
  /// Steps already flushed into shared_ (flush delta = steps_ - this).
  std::uint64_t flushed_steps_ = 0;
  bool has_deadline_ = false;
  bool exhausted_ = false;
};

}  // namespace util
}  // namespace rdfc
