#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rdfc {
namespace util {

/// True iff `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True iff `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Splits on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Strips leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Renders a double with `precision` digits after the decimal point.
std::string FormatDouble(double v, int precision = 4);

/// Renders an integer with thousands separators, e.g. 1536378 -> "1,536,378".
std::string WithThousands(std::uint64_t v);

}  // namespace util
}  // namespace rdfc
