#include "util/union_find.h"

#include "util/macros.h"

namespace rdfc {
namespace util {

void UnionFind::Reset(std::size_t n) {
  parent_.resize(n);
  size_.assign(n, 1);
  for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<std::uint32_t>(i);
  num_sets_ = n;
}

std::uint32_t UnionFind::Add() {
  const auto id = static_cast<std::uint32_t>(parent_.size());
  parent_.push_back(id);
  size_.push_back(1);
  ++num_sets_;
  return id;
}

std::uint32_t UnionFind::Find(std::uint32_t x) {
  RDFC_DCHECK(x < parent_.size());
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // Path halving.
    x = parent_[x];
  }
  return x;
}

std::uint32_t UnionFind::Union(std::uint32_t a, std::uint32_t b) {
  a = Find(a);
  b = Find(b);
  if (a == b) return a;
  if (size_[a] < size_[b]) std::swap(a, b);
  parent_[b] = a;
  size_[a] += size_[b];
  --num_sets_;
  return a;
}

}  // namespace util
}  // namespace rdfc
