#include "util/string_util.h"

#include <cctype>
#include <cstdint>
#include <cstdio>

namespace rdfc {
namespace util {

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string WithThousands(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

}  // namespace util
}  // namespace rdfc
