#pragma once

#include <cstdint>
#include <vector>

namespace rdfc {
namespace util {

/// Disjoint-set forest with union-by-size and path halving.  Used by the
/// f-graph witness construction (congruence-closure merging of query terms)
/// and by connected-component analysis of BGP queries.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n = 0) { Reset(n); }

  /// Re-initialises the structure to `n` singleton sets.
  void Reset(std::size_t n);

  /// Adds one more singleton set and returns its id.
  std::uint32_t Add();

  std::size_t size() const { return parent_.size(); }

  /// Representative of x's set.
  std::uint32_t Find(std::uint32_t x);

  /// Merges the sets of a and b; returns the new representative.
  /// No-op (returning the shared root) if already merged.
  std::uint32_t Union(std::uint32_t a, std::uint32_t b);

  bool Same(std::uint32_t a, std::uint32_t b) { return Find(a) == Find(b); }

  /// Number of elements in x's set.
  std::uint32_t SetSize(std::uint32_t x) { return size_[Find(x)]; }

  /// Number of disjoint sets currently represented.
  std::size_t num_sets() const { return num_sets_; }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
  std::size_t num_sets_ = 0;
};

}  // namespace util
}  // namespace rdfc
