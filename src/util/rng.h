#pragma once

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "util/macros.h"

namespace rdfc {
namespace util {

/// Deterministic pseudo-random source for the workload generators and
/// property tests.  Thin wrapper over std::mt19937_64 with the convenience
/// draws the generators need.  All generators take an explicit seed so every
/// bench run is reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  std::uint64_t Uniform(std::uint64_t lo, std::uint64_t hi) {
    RDFC_DCHECK(lo <= hi);
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [0, 1).
  double UniformReal() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli draw with probability p of true.
  bool Chance(double p) { return UniformReal() < p; }

  /// Zipf-like draw in [0, n): element k with weight 1/(k+1)^alpha.
  /// Used to reproduce the heavy predicate-reuse of the DBpedia log.
  std::size_t Zipf(std::size_t n, double alpha = 1.0);

  /// Picks an index according to explicit non-negative weights.
  std::size_t Weighted(const std::vector<double>& weights);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

inline std::size_t Rng::Zipf(std::size_t n, double alpha) {
  RDFC_DCHECK(n > 0);
  // Inverse-CDF over a harmonic-weight table would be exact; for generator
  // purposes a rejection-free two-step approximation keeps this O(1):
  // draw u, map through u^(1/(1-alpha)) style skew.  For alpha == 1 fall back
  // to a simple skewed power draw.
  const double u = UniformReal();
  const double skewed = alpha <= 0.0 ? u : std::pow(u, 1.0 + alpha * 1.5);
  auto idx = static_cast<std::size_t>(skewed * static_cast<double>(n));
  if (idx >= n) idx = n - 1;
  return idx;
}

inline std::size_t Rng::Weighted(const std::vector<double>& weights) {
  RDFC_DCHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  double r = UniformReal() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace util
}  // namespace rdfc
