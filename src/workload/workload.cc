#include "workload/workload.h"

#include <cstdlib>

#include "util/rng.h"

namespace rdfc {
namespace workload {

const char* WorkloadName(WorkloadId id) {
  switch (id) {
    case WorkloadId::kDbpedia: return "DBPedia";
    case WorkloadId::kWatdiv: return "WatDiv";
    case WorkloadId::kBsbm: return "BSBM";
    case WorkloadId::kLubm: return "LUBM";
    case WorkloadId::kLdbc: return "LDBC";
  }
  return "unknown";
}

double ScaleFromEnv(double fallback) {
  const char* env = std::getenv("RDFC_SCALE");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const double value = std::strtod(env, &end);
  if (end == env || value <= 0.0) return fallback;
  return value;
}

WorkloadOptions ScaledWorkloadOptions(double scale, std::uint64_t seed) {
  WorkloadOptions options;
  options.seed = seed;
  auto scaled = [&](double paper_count) {
    const double v = paper_count * scale;
    return v < 1.0 ? std::size_t{1} : static_cast<std::size_t>(v);
  };
  options.dbpedia = scaled(1'287'711);
  options.watdiv = scaled(148'800);
  options.bsbm = scaled(99'800);
  options.lubm = 14;
  options.ldbc = 53;
  return options;
}

std::vector<WorkloadQuery> GenerateCombined(rdf::TermDictionary* dict,
                                            const WorkloadOptions& options) {
  struct Source {
    WorkloadId id;
    std::vector<query::BgpQuery> queries;
    std::size_t next = 0;
  };
  std::vector<Source> sources;
  sources.push_back(
      {WorkloadId::kDbpedia,
       GenerateDbpedia(dict, options.dbpedia, options.seed ^ 0x0D0Dull), 0});
  sources.push_back(
      {WorkloadId::kWatdiv,
       GenerateWatdiv(dict, options.watdiv, options.seed ^ 0x0A71ull), 0});
  sources.push_back(
      {WorkloadId::kBsbm,
       GenerateBsbm(dict, options.bsbm, options.seed ^ 0xB5B1ull), 0});
  {
    util::Result<std::vector<query::BgpQuery>> lubm = LubmQueries(dict);
    RDFC_CHECK(lubm.ok());
    std::vector<query::BgpQuery> queries = std::move(lubm).value();
    if (queries.size() > options.lubm) queries.resize(options.lubm);
    sources.push_back({WorkloadId::kLubm, std::move(queries), 0});
  }
  sources.push_back(
      {WorkloadId::kLdbc,
       GenerateLdbc(dict, options.ldbc, options.seed ^ 0x1DBCull), 0});

  // Deterministic proportional interleave: at each step emit from the source
  // with the lowest fractional progress, mimicking a merged log.
  std::vector<WorkloadQuery> out;
  out.reserve(options.total());
  std::uint64_t seq = 0;
  while (true) {
    Source* best = nullptr;
    double best_progress = 2.0;
    for (Source& s : sources) {
      if (s.next >= s.queries.size()) continue;
      const double progress =
          static_cast<double>(s.next) /
          static_cast<double>(s.queries.size());
      if (progress < best_progress) {
        best_progress = progress;
        best = &s;
      }
    }
    if (best == nullptr) break;
    out.push_back(WorkloadQuery{std::move(best->queries[best->next]),
                                best->id, seq++});
    ++best->next;
  }
  return out;
}

}  // namespace workload
}  // namespace rdfc
