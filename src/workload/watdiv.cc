#include "workload/workload.h"

#include "util/rng.h"

namespace rdfc {
namespace workload {

namespace {

/// WatDiv's published schema mixes e-commerce and social vocabulary across
/// several namespaces; we reproduce its 86-predicate footprint.
class WatdivVocab {
 public:
  explicit WatdivVocab(rdf::TermDictionary* dict) : dict_(dict) {
    const char* names[] = {
        "caption", "hasReview", "reviewer", "likes", "friendOf", "follows",
        "subscribes", "makesPurchase", "purchaseFor", "purchaseDate",
        "title", "price", "validFrom", "validThrough", "eligibleRegion",
        "includes", "offers", "hasGenre", "director", "actor", "artist",
        "composer", "conductor", "editor", "author", "publisher", "language",
        "contentRating", "contentSize", "keywords", "description", "text",
        "rating", "totalVotes", "userId", "familyName", "givenName", "email",
        "telephone", "faxNumber", "jobTitle", "worksFor", "nationality",
        "birthDate", "age", "gender", "homepage", "nick", "mbox", "based_near",
        "knows", "interest", "topic", "primaryTopic", "made", "maker",
        "depicts", "thumbnail", "logo", "img", "location", "country", "city",
        "street", "postalCode", "openingHours", "paymentAccepted",
        "priceRange", "legalName", "foundingDate", "numberOfEmployees",
        "tickerSymbol", "duns", "naics", "award", "contactPoint", "brand",
        "model", "productionDate", "releaseDate", "serialNumber", "sku",
        "weight", "width", "height", "depth",
    };
    for (const char* name : names) {
      predicates_.push_back(
          dict_->MakeIri(std::string("http://db.uwaterloo.ca/~galuc/wsdbm/") +
                         name));
    }
    type_ = dict_->MakeIri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
    const char* classes[] = {"User",    "Product", "Review", "Offer",
                             "Purchase", "Website", "City",   "Country",
                             "Genre",   "Language", "Retailer", "Topic"};
    for (const char* name : classes) {
      classes_.push_back(
          dict_->MakeIri(std::string("http://db.uwaterloo.ca/~galuc/wsdbm/") +
                         name));
    }
  }

  rdf::TermId Predicate(util::Rng* rng) {
    return predicates_[rng->Zipf(predicates_.size(), 1.0)];
  }
  std::vector<rdf::TermId> DistinctPredicates(util::Rng* rng,
                                              std::size_t count) {
    std::vector<rdf::TermId> out;
    while (out.size() < count) {
      const rdf::TermId p = Predicate(rng);
      bool dup = false;
      for (rdf::TermId q : out) dup = dup || q == p;
      if (!dup) out.push_back(p);
    }
    return out;
  }
  rdf::TermId Class(util::Rng* rng) {
    return classes_[rng->Zipf(classes_.size(), 0.5)];
  }
  rdf::TermId Entity(util::Rng* rng) {
    return dict_->MakeIri("http://db.uwaterloo.ca/~galuc/wsdbm/Entity" +
                          std::to_string(rng->Zipf(600, 1.2)));
  }
  rdf::TermId type() const { return type_; }

 private:
  rdf::TermDictionary* dict_;
  std::vector<rdf::TermId> predicates_;
  std::vector<rdf::TermId> classes_;
  rdf::TermId type_;
};

}  // namespace

std::vector<query::BgpQuery> GenerateWatdiv(rdf::TermDictionary* dict,
                                            std::size_t n,
                                            std::uint64_t seed) {
  util::Rng rng(seed);
  WatdivVocab vocab(dict);
  auto var = [&](std::uint32_t k) {
    return dict->MakeVariable("w" + std::to_string(k));
  };

  // Pool-then-sample (see GenerateDbpedia): WatDiv stress workloads are
  // produced from template instantiations and recur accordingly.
  const std::size_t pool_size = std::max<std::size_t>(20, (n * 40) / 100);
  std::vector<query::BgpQuery> pool;
  pool.reserve(pool_size);

  for (std::size_t i = 0; i < pool_size; ++i) {
    query::BgpQuery q;
    std::uint32_t next_var = 1;
    const rdf::TermId x = var(next_var++);
    q.AddDistinguished(x);
    // WatDiv stress-test taxonomy: linear (L), star (S), snowflake (F),
    // complex (C).
    const double shape = rng.UniformReal();

    if (shape < 0.30) {
      // Linear: chain of 2-6 hops, anchored on a constant at one end half
      // the time.
      const auto hops = static_cast<std::size_t>(rng.Uniform(2, 6));
      rdf::TermId current = rng.Chance(0.5) ? vocab.Entity(&rng) : x;
      if (dict->IsConstant(current)) {
        q.AddPattern(current, vocab.Predicate(&rng), x);
        current = x;
      }
      for (std::size_t h = 0; h < hops; ++h) {
        const rdf::TermId next = var(next_var++);
        q.AddPattern(current, vocab.Predicate(&rng), next);
        current = next;
      }
    } else if (shape < 0.62) {
      // Star: 3-8 arms with distinct predicates plus a type constraint.
      const auto arms = static_cast<std::size_t>(rng.Uniform(3, 8));
      q.AddPattern(x, vocab.type(), vocab.Class(&rng));
      for (rdf::TermId p : vocab.DistinctPredicates(&rng, arms)) {
        const double kind = rng.UniformReal();
        rdf::TermId o = kind < 0.35 ? vocab.Entity(&rng) : var(next_var++);
        q.AddPattern(x, p, o);
      }
    } else if (shape < 0.86) {
      // Snowflake: star whose arm endpoints grow their own 1-3 arm stars.
      const auto arms = static_cast<std::size_t>(rng.Uniform(2, 4));
      for (rdf::TermId p : vocab.DistinctPredicates(&rng, arms)) {
        const rdf::TermId hub = var(next_var++);
        q.AddPattern(x, p, hub);
        const auto leaves = static_cast<std::size_t>(rng.Uniform(1, 3));
        for (rdf::TermId lp : vocab.DistinctPredicates(&rng, leaves)) {
          const rdf::TermId leaf =
              rng.Chance(0.3) ? vocab.Entity(&rng) : var(next_var++);
          q.AddPattern(hub, lp, leaf);
        }
      }
    } else {
      // Complex: merged stars with shared endpoints — frequently non-f-graph
      // (a predicate reused across the two hubs onto the same object) and
      // sometimes cyclic.
      const rdf::TermId y = var(next_var++);
      const rdf::TermId shared = var(next_var++);
      const rdf::TermId p = vocab.Predicate(&rng);
      q.AddPattern(x, p, shared);
      q.AddPattern(y, p, shared);  // violates f-graph condition (ii)
      const auto extra = static_cast<std::size_t>(rng.Uniform(1, 4));
      for (rdf::TermId ep : vocab.DistinctPredicates(&rng, extra)) {
        q.AddPattern(rng.Chance(0.5) ? x : y, ep,
                     rng.Chance(0.3) ? vocab.Entity(&rng) : var(next_var++));
      }
      if (rng.Chance(0.35)) {
        // Close a cycle between the two hubs.
        q.AddPattern(x, vocab.Predicate(&rng), y);
      }
      q.AddDistinguished(y);
    }
    pool.push_back(std::move(q));
  }

  std::vector<query::BgpQuery> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(pool[rng.Zipf(pool.size(), 0.4)]);
  }
  return out;
}

}  // namespace workload
}  // namespace rdfc
