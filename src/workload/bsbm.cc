#include "workload/workload.h"

#include "util/rng.h"

namespace rdfc {
namespace workload {

namespace {

constexpr char kBsbm[] =
    "http://www4.wiwiss.fu-berlin.de/bizer/bsbm/v01/vocabulary/";
constexpr char kBsbmInst[] =
    "http://www4.wiwiss.fu-berlin.de/bizer/bsbm/v01/instances/";

/// Berlin SPARQL Benchmark vocabulary and parameter pools.  BSBM queries are
/// "based on a variation of 12 basic query patterns" (paper Section 7):
/// every generated query instantiates one of the 12 templates below with
/// parameters drawn from Zipf pools, which is what produces the heavy
/// serialised-prefix sharing in the mv-index.
class BsbmVocab {
 public:
  explicit BsbmVocab(rdf::TermDictionary* dict) : dict_(dict) {
    type_ = dict_->MakeIri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
    label_ = dict_->MakeIri("http://www.w3.org/2000/01/rdf-schema#label");
    comment_ = dict_->MakeIri("http://www.w3.org/2000/01/rdf-schema#comment");
    product_ = V("Product");
    product_feature_ = V("productFeature");
    product_property1_ = V("productPropertyNumeric1");
    product_property2_ = V("productPropertyNumeric2");
    product_property_t1_ = V("productPropertyTextual1");
    producer_ = V("producer");
    publisher_ = dict_->MakeIri("http://purl.org/dc/elements/1.1/publisher");
    price_ = V("price");
    vendor_ = V("vendor");
    offer_ = V("Offer");
    offer_product_ = V("product");
    delivery_days_ = V("deliveryDays");
    valid_to_ = V("validTo");
    review_ = V("Review");
    review_for_ = V("reviewFor");
    reviewer_ = V("reviewer");
    review_date_ = V("reviewDate");
    rating1_ = V("rating1");
    rating2_ = V("rating2");
    title_ = V("reviewTitle");
    text_ = V("text");
    name_ = dict_->MakeIri("http://xmlns.com/foaf/0.1/name");
    mbox_ = dict_->MakeIri("http://xmlns.com/foaf/0.1/mbox_sha1sum");
    country_ = V("country");
  }

  rdf::TermId V(const std::string& local) {
    return dict_->MakeIri(kBsbm + local);
  }
  rdf::TermId ProductType(util::Rng* rng) {
    return dict_->MakeIri(std::string(kBsbmInst) + "ProductType" +
                          std::to_string(rng->Zipf(120, 1.2)));
  }
  rdf::TermId Feature(util::Rng* rng) {
    return dict_->MakeIri(std::string(kBsbmInst) + "ProductFeature" +
                          std::to_string(rng->Zipf(300, 1.2)));
  }
  rdf::TermId ProductInstance(util::Rng* rng) {
    return dict_->MakeIri(std::string(kBsbmInst) + "Product" +
                          std::to_string(rng->Zipf(400, 1.2)));
  }
  rdf::TermId CountryInstance(util::Rng* rng) {
    return dict_->MakeIri(
        "http://downlode.org/rdf/iso-3166/countries#C" +
        std::to_string(rng->Zipf(30, 1.0)));
  }

  rdf::TermId type_, label_, comment_, product_, product_feature_,
      product_property1_, product_property2_, product_property_t1_, producer_,
      publisher_, price_, vendor_, offer_, offer_product_, delivery_days_,
      valid_to_, review_, review_for_, reviewer_, review_date_, rating1_,
      rating2_, title_, text_, name_, mbox_, country_;

 private:
  rdf::TermDictionary* dict_;
};

}  // namespace

std::vector<query::BgpQuery> GenerateBsbm(rdf::TermDictionary* dict,
                                          std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  BsbmVocab v(dict);
  auto var = [&](const char* name) { return dict->MakeVariable(name); };

  // Pool-then-sample: BSBM instantiates 12 fixed patterns with parameters,
  // so the distinct fraction is small.
  const std::size_t pool_size = std::max<std::size_t>(12, (n * 12) / 100);
  std::vector<query::BgpQuery> pool;
  pool.reserve(pool_size);

  for (std::size_t i = 0; i < pool_size; ++i) {
    query::BgpQuery q;
    const std::size_t tmpl = rng.Uniform(1, 12);
    const rdf::TermId product = var("product");
    const rdf::TermId label = var("label");
    const rdf::TermId offer = var("offer");
    const rdf::TermId review = var("review");
    const rdf::TermId reviewer = var("reviewer");
    const rdf::TermId vendor = var("vendor");
    switch (tmpl) {
      case 1:  // Products of a type with two features.
        q.AddDistinguished(product);
        q.AddPattern(product, v.type_, v.ProductType(&rng));
        q.AddPattern(product, v.label_, label);
        q.AddPattern(product, v.product_feature_, v.Feature(&rng));
        q.AddPattern(product, v.product_feature_, v.Feature(&rng));
        q.AddPattern(product, v.product_property1_, var("p1"));
        break;
      case 2: {  // Product detail page.
        const rdf::TermId p = v.ProductInstance(&rng);
        q.AddDistinguished(label);
        q.AddPattern(p, v.label_, label);
        q.AddPattern(p, v.comment_, var("comment"));
        q.AddPattern(p, v.producer_, var("producer"));
        q.AddPattern(var("producer"), v.label_, var("producerLabel"));
        q.AddPattern(p, v.publisher_, var("producer"));
        q.AddPattern(p, v.product_feature_, var("feature"));
        q.AddPattern(var("feature"), v.label_, var("featureLabel"));
        q.AddPattern(p, v.product_property1_, var("p1"));
        q.AddPattern(p, v.product_property_t1_, var("t1"));
        break;
      }
      case 3:  // Products of a type with a feature and numeric property.
        q.AddDistinguished(product);
        q.AddPattern(product, v.type_, v.ProductType(&rng));
        q.AddPattern(product, v.label_, label);
        q.AddPattern(product, v.product_feature_, v.Feature(&rng));
        q.AddPattern(product, v.product_property1_, var("p1"));
        q.AddPattern(product, v.product_property2_, var("p2"));
        break;
      case 4:  // Products with either of two features (one branch).
        q.AddDistinguished(product);
        q.AddPattern(product, v.type_, v.ProductType(&rng));
        q.AddPattern(product, v.label_, label);
        q.AddPattern(product, v.product_feature_, v.Feature(&rng));
        q.AddPattern(product, v.product_property1_, var("p1"));
        break;
      case 5: {  // Products similar to a given product (shared producer).
        const rdf::TermId p = v.ProductInstance(&rng);
        q.AddDistinguished(product);
        q.AddPattern(p, v.producer_, var("producer"));
        q.AddPattern(product, v.producer_, var("producer"));
        q.AddPattern(product, v.label_, label);
        q.AddPattern(product, v.product_property1_, var("p1"));
        break;
      }
      case 6:  // Label lookup for a product instance.
        q.AddDistinguished(label);
        q.AddPattern(v.ProductInstance(&rng), v.label_, label);
        break;
      case 7: {  // Product page with offers and reviews.
        const rdf::TermId p = v.ProductInstance(&rng);
        q.AddDistinguished(offer);
        q.AddPattern(p, v.label_, label);
        q.AddPattern(offer, v.offer_product_, p);
        q.AddPattern(offer, v.price_, var("price"));
        q.AddPattern(offer, v.vendor_, vendor);
        q.AddPattern(vendor, v.label_, var("vendorLabel"));
        q.AddPattern(review, v.review_for_, p);
        q.AddPattern(review, v.reviewer_, reviewer);
        q.AddPattern(reviewer, v.name_, var("revName"));
        q.AddPattern(review, v.title_, var("revTitle"));
        break;
      }
      case 8: {  // All reviews for a product.
        const rdf::TermId p = v.ProductInstance(&rng);
        q.AddDistinguished(review);
        q.AddPattern(review, v.review_for_, p);
        q.AddPattern(review, v.reviewer_, reviewer);
        q.AddPattern(reviewer, v.name_, var("revName"));
        q.AddPattern(review, v.title_, var("revTitle"));
        q.AddPattern(review, v.text_, var("revText"));
        q.AddPattern(review, v.review_date_, var("revDate"));
        q.AddPattern(review, v.rating1_, var("r1"));
        break;
      }
      case 9:  // Reviewer profile via a review.
        q.AddDistinguished(reviewer);
        q.AddPattern(review, v.reviewer_, reviewer);
        q.AddPattern(reviewer, v.name_, var("revName"));
        q.AddPattern(reviewer, v.mbox_, var("mbox"));
        q.AddPattern(reviewer, v.country_, v.CountryInstance(&rng));
        break;
      case 10: {  // Offers for a product deliverable in a country.
        const rdf::TermId p = v.ProductInstance(&rng);
        q.AddDistinguished(offer);
        q.AddPattern(offer, v.offer_product_, p);
        q.AddPattern(offer, v.vendor_, vendor);
        q.AddPattern(vendor, v.country_, v.CountryInstance(&rng));
        q.AddPattern(offer, v.delivery_days_, var("days"));
        q.AddPattern(offer, v.price_, var("price"));
        q.AddPattern(offer, v.valid_to_, var("date"));
        break;
      }
      case 11:  // All properties of an offer — variable predicate!
        q.AddDistinguished(var("property"));
        q.AddPattern(offer, v.offer_product_, v.ProductInstance(&rng));
        q.AddPattern(offer, var("property"), var("value"));
        break;
      case 12: {  // Offer export view.
        const rdf::TermId p = v.ProductInstance(&rng);
        q.AddDistinguished(offer);
        q.AddPattern(offer, v.offer_product_, p);
        q.AddPattern(p, v.label_, var("productLabel"));
        q.AddPattern(offer, v.vendor_, vendor);
        q.AddPattern(vendor, v.label_, var("vendorLabel"));
        q.AddPattern(vendor, v.offer_, var("vendorHomepage"));
        q.AddPattern(offer, v.price_, var("price"));
        q.AddPattern(offer, v.valid_to_, var("date"));
        break;
      }
      default:
        break;
    }
    pool.push_back(std::move(q));
  }

  std::vector<query::BgpQuery> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(pool[rng.Zipf(pool.size(), 0.4)]);
  }
  return out;
}

}  // namespace workload
}  // namespace rdfc
