#include "workload/workload.h"

#include "sparql/parser.h"
#include "util/rng.h"

namespace rdfc {
namespace workload {

namespace {

constexpr char kUb[] = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#";
constexpr char kDept0[] = "http://www.Department0.University0.edu";

const char* kLubmPrologue = R"(
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
)";

/// The 14 LUBM queries, translated to plain BGPs (FILTER-free forms; LUBM
/// has no FILTERs).  Constants follow the benchmark's Department0/University0
/// conventions.
const char* kLubmQueries[] = {
    // Q1: graduate students taking a specific course.
    R"(SELECT ?x WHERE {
        ?x rdf:type ub:GraduateStudent .
        ?x ub:takesCourse <http://www.Department0.University0.edu/GraduateCourse0> . })",
    // Q2: graduate students with their university and department (triangle).
    R"(SELECT ?x ?y ?z WHERE {
        ?x rdf:type ub:GraduateStudent .
        ?y rdf:type ub:University .
        ?z rdf:type ub:Department .
        ?x ub:memberOf ?z .
        ?z ub:subOrganizationOf ?y .
        ?x ub:undergraduateDegreeFrom ?y . })",
    // Q3: publications of a specific assistant professor.
    R"(SELECT ?x WHERE {
        ?x rdf:type ub:Publication .
        ?x ub:publicationAuthor <http://www.Department0.University0.edu/AssistantProfessor0> . })",
    // Q4: professors working for a department, with contact details.
    R"(SELECT ?x ?y1 ?y2 ?y3 WHERE {
        ?x rdf:type ub:Professor .
        ?x ub:worksFor <http://www.Department0.University0.edu> .
        ?x ub:name ?y1 .
        ?x ub:emailAddress ?y2 .
        ?x ub:telephone ?y3 . })",
    // Q5: persons that are members of a department.
    R"(SELECT ?x WHERE {
        ?x rdf:type ub:Person .
        ?x ub:memberOf <http://www.Department0.University0.edu> . })",
    // Q6: all students.
    R"(SELECT ?x WHERE { ?x rdf:type ub:Student . })",
    // Q7: students taking courses taught by a specific professor.
    R"(SELECT ?x ?y WHERE {
        ?x rdf:type ub:Student .
        ?y rdf:type ub:Course .
        ?x ub:takesCourse ?y .
        <http://www.Department0.University0.edu/AssociateProfessor0> ub:teacherOf ?y . })",
    // Q8: students member of departments of a university, with email.
    R"(SELECT ?x ?y ?z WHERE {
        ?x rdf:type ub:Student .
        ?y rdf:type ub:Department .
        ?x ub:memberOf ?y .
        ?y ub:subOrganizationOf <http://www.University0.edu> .
        ?x ub:emailAddress ?z . })",
    // Q9: student/faculty/course triangle.
    R"(SELECT ?x ?y ?z WHERE {
        ?x rdf:type ub:Student .
        ?y rdf:type ub:Faculty .
        ?z rdf:type ub:Course .
        ?x ub:advisor ?y .
        ?y ub:teacherOf ?z .
        ?x ub:takesCourse ?z . })",
    // Q10: students taking a specific graduate course.
    R"(SELECT ?x WHERE {
        ?x rdf:type ub:Student .
        ?x ub:takesCourse <http://www.Department0.University0.edu/GraduateCourse0> . })",
    // Q11: research groups of a university.
    R"(SELECT ?x WHERE {
        ?x rdf:type ub:ResearchGroup .
        ?x ub:subOrganizationOf <http://www.University0.edu> . })",
    // Q12: chairs working for departments of a university.
    R"(SELECT ?x ?y WHERE {
        ?x rdf:type ub:Chair .
        ?y rdf:type ub:Department .
        ?x ub:worksFor ?y .
        ?y ub:subOrganizationOf <http://www.University0.edu> . })",
    // Q13: alumni of a university.
    R"(SELECT ?x WHERE {
        ?x rdf:type ub:Person .
        <http://www.University0.edu> ub:hasAlumnus ?x . })",
    // Q14: all undergraduate students.
    R"(SELECT ?x WHERE { ?x rdf:type ub:UndergraduateStudent . })",
};

}  // namespace

util::Result<std::vector<query::BgpQuery>> LubmQueries(
    rdf::TermDictionary* dict) {
  std::vector<query::BgpQuery> out;
  out.reserve(14);
  for (const char* body : kLubmQueries) {
    RDFC_ASSIGN_OR_RETURN(
        query::BgpQuery q,
        sparql::ParseQuery(std::string(kLubmPrologue) + body, dict));
    out.push_back(std::move(q));
  }
  return out;
}

rdfs::RdfsSchema LubmSchema(rdf::TermDictionary* dict) {
  rdfs::RdfsSchema schema;
  auto ub = [&](const char* local) {
    return dict->MakeIri(std::string(kUb) + local);
  };
  auto sub_class = [&](const char* sub, const char* super) {
    schema.AddSubClass(ub(sub), ub(super));
  };
  auto sub_property = [&](const char* sub, const char* super) {
    schema.AddSubProperty(ub(sub), ub(super));
  };

  // univ-bench class hierarchy (RDFS-expressible fragment).
  sub_class("Employee", "Person");
  sub_class("Student", "Person");
  sub_class("GraduateStudent", "Student");
  sub_class("UndergraduateStudent", "Student");
  sub_class("ResearchAssistant", "Student");
  sub_class("TeachingAssistant", "Person");
  sub_class("Faculty", "Employee");
  sub_class("AdministrativeStaff", "Employee");
  sub_class("ClericalStaff", "AdministrativeStaff");
  sub_class("SystemsStaff", "AdministrativeStaff");
  sub_class("Professor", "Faculty");
  sub_class("Lecturer", "Faculty");
  sub_class("PostDoc", "Faculty");
  sub_class("FullProfessor", "Professor");
  sub_class("AssociateProfessor", "Professor");
  sub_class("AssistantProfessor", "Professor");
  sub_class("VisitingProfessor", "Professor");
  sub_class("Chair", "Professor");
  sub_class("Dean", "Professor");
  sub_class("Director", "Person");
  sub_class("University", "Organization");
  sub_class("Department", "Organization");
  sub_class("Institute", "Organization");
  sub_class("College", "Organization");
  sub_class("Program", "Organization");
  sub_class("ResearchGroup", "Organization");
  sub_class("Course", "Work");
  sub_class("GraduateCourse", "Course");
  sub_class("Research", "Work");
  sub_class("Article", "Publication");
  sub_class("Book", "Publication");
  sub_class("Manual", "Publication");
  sub_class("Software", "Publication");
  sub_class("Specification", "Publication");
  sub_class("TechnicalReport", "Article");
  sub_class("JournalArticle", "Article");
  sub_class("ConferencePaper", "Article");
  sub_class("UnofficialPublication", "Publication");

  // Property hierarchy.
  sub_property("headOf", "worksFor");
  sub_property("worksFor", "memberOf");
  sub_property("undergraduateDegreeFrom", "degreeFrom");
  sub_property("mastersDegreeFrom", "degreeFrom");
  sub_property("doctoralDegreeFrom", "degreeFrom");

  // Domains and ranges (RDFS-expressible fragment of univ-bench).
  schema.AddDomain(ub("takesCourse"), ub("Student"));
  schema.AddRange(ub("takesCourse"), ub("Course"));
  schema.AddDomain(ub("teacherOf"), ub("Faculty"));
  schema.AddRange(ub("teacherOf"), ub("Course"));
  schema.AddDomain(ub("advisor"), ub("Person"));
  schema.AddRange(ub("advisor"), ub("Professor"));
  schema.AddDomain(ub("memberOf"), ub("Person"));
  schema.AddRange(ub("memberOf"), ub("Organization"));
  schema.AddDomain(ub("worksFor"), ub("Employee"));
  schema.AddRange(ub("degreeFrom"), ub("University"));
  schema.AddDomain(ub("degreeFrom"), ub("Person"));
  schema.AddDomain(ub("publicationAuthor"), ub("Publication"));
  schema.AddRange(ub("publicationAuthor"), ub("Person"));
  schema.AddRange(ub("subOrganizationOf"), ub("Organization"));
  schema.AddDomain(ub("subOrganizationOf"), ub("Organization"));
  schema.AddDomain(ub("hasAlumnus"), ub("University"));
  schema.AddRange(ub("hasAlumnus"), ub("Person"));
  schema.AddDomain(ub("researchInterest"), ub("Person"));
  return schema;
}

util::Result<std::vector<query::BgpQuery>> GenerateLubmExtended(
    rdf::TermDictionary* dict, std::size_t n, std::uint64_t seed) {
  RDFC_ASSIGN_OR_RETURN(std::vector<query::BgpQuery> seeds,
                        LubmQueries(dict));
  const rdfs::RdfsSchema schema = LubmSchema(dict);
  const rdf::TermId type =
      dict->MakeIri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
  util::Rng rng(seed);

  std::vector<query::BgpQuery> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const query::BgpQuery& seed_query = seeds[i % seeds.size()];
    query::BgpQuery q;
    q.set_form(seed_query.form());
    for (rdf::TermId var : seed_query.distinguished()) {
      q.AddDistinguished(var);
    }
    for (const rdf::Triple& t : seed_query.patterns()) {
      rdf::Triple replaced = t;
      if (t.p == type && !dict->IsVariable(t.o)) {
        // (i) type objects move up or down the class hierarchy.
        const double r = rng.UniformReal();
        if (r < 0.35) {
          const auto supers = schema.SuperClassesOf(t.o);
          replaced.o = supers[rng.Uniform(0, supers.size() - 1)];
        } else if (r < 0.6) {
          const auto subs = schema.SubClassesOf(t.o);
          replaced.o = subs[rng.Uniform(0, subs.size() - 1)];
        }
      } else if (t.p != type) {
        // (ii) predicates move up or down the property hierarchy.
        const double r = rng.UniformReal();
        if (r < 0.25) {
          const auto supers = schema.SuperPropertiesOf(t.p);
          replaced.p = supers[rng.Uniform(0, supers.size() - 1)];
        } else if (r < 0.45) {
          const auto subs = schema.SubPropertiesOf(t.p);
          replaced.p = subs[rng.Uniform(0, subs.size() - 1)];
        }
      }
      q.AddPattern(replaced);
      // (iii) occasionally add a domain/range-derived type triple.
      if (replaced.p != type && rng.Chance(0.2)) {
        for (rdf::TermId cls : schema.DomainsOf(replaced.p)) {
          q.AddPattern(replaced.s, type, cls);
          break;
        }
      }
      if (replaced.p != type && rng.Chance(0.2)) {
        for (rdf::TermId cls : schema.RangesOf(replaced.p)) {
          if (!dict->IsLiteral(replaced.o)) q.AddPattern(replaced.o, type, cls);
          break;
        }
      }
    }
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace workload
}  // namespace rdfc
