#include "workload/lubm_data.h"

#include <string>
#include <vector>

#include "util/rng.h"

namespace rdfc {
namespace workload {

namespace {

constexpr char kUb[] = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#";

class Emitter {
 public:
  Emitter(rdf::TermDictionary* dict, rdf::Graph* graph, util::Rng* rng)
      : dict_(dict), graph_(graph), rng_(rng) {
    type_ = dict_->MakeIri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
  }

  rdf::TermId Ub(const std::string& local) {
    return dict_->MakeIri(std::string(kUb) + local);
  }
  rdf::TermId Iri(const std::string& iri) { return dict_->MakeIri(iri); }
  rdf::TermId Lit(const std::string& value) {
    return dict_->MakeLiteral("\"" + value + "\"");
  }

  void Triple(rdf::TermId s, rdf::TermId p, rdf::TermId o) {
    graph_->Add(s, p, o);
  }
  void TypeOf(rdf::TermId s, const std::string& cls) {
    Triple(s, type_, Ub(cls));
  }

  std::size_t Scaled(std::size_t lo, std::size_t hi, double scale) {
    const std::size_t base = rng_->Uniform(lo, hi);
    const auto scaled = static_cast<std::size_t>(
        static_cast<double>(base) * scale);
    return scaled < 1 ? 1 : scaled;
  }

  util::Rng& rng() { return *rng_; }

 private:
  rdf::TermDictionary* dict_;
  rdf::Graph* graph_;
  util::Rng* rng_;
  rdf::TermId type_;
};

/// Faculty profile: class name and how many per department (UBA ranges).
struct FacultyProfile {
  const char* cls;
  std::size_t lo;
  std::size_t hi;
};
constexpr FacultyProfile kFaculty[] = {
    {"FullProfessor", 7, 10},
    {"AssociateProfessor", 10, 14},
    {"AssistantProfessor", 8, 11},
    {"Lecturer", 5, 7},
};

void EmitDepartment(Emitter& e, const std::string& univ_iri,
                    rdf::TermId university, std::size_t dept_index,
                    double scale) {
  const std::string dept_iri =
      "http://www.Department" + std::to_string(dept_index) + "." +
      univ_iri.substr(std::string("http://www.").size());
  const rdf::TermId department = e.Iri(dept_iri);
  e.TypeOf(department, "Department");
  e.Triple(department, e.Ub("subOrganizationOf"), university);
  e.Triple(department, e.Ub("name"),
           e.Lit("Department" + std::to_string(dept_index)));

  // Research groups.
  const std::size_t groups = e.Scaled(10, 20, scale);
  for (std::size_t g = 0; g < groups; ++g) {
    const rdf::TermId group =
        e.Iri(dept_iri + "/ResearchGroup" + std::to_string(g));
    e.TypeOf(group, "ResearchGroup");
    e.Triple(group, e.Ub("subOrganizationOf"), department);
    // univ-bench declares subOrganizationOf transitive (OWL); RDFS cannot
    // derive the closure, so assert the university edge directly (Q11).
    e.Triple(group, e.Ub("subOrganizationOf"), university);
  }

  // Faculty, their courses and publications.
  std::vector<rdf::TermId> all_faculty;
  std::vector<rdf::TermId> professors;
  std::vector<rdf::TermId> courses, graduate_courses;
  for (const FacultyProfile& profile : kFaculty) {
    const std::size_t count = e.Scaled(profile.lo, profile.hi, scale);
    for (std::size_t i = 0; i < count; ++i) {
      const rdf::TermId person =
          e.Iri(dept_iri + "/" + profile.cls + std::to_string(i));
      e.TypeOf(person, profile.cls);
      e.Triple(person, e.Ub("worksFor"), department);
      e.Triple(person, e.Ub("name"),
               e.Lit(std::string(profile.cls) + std::to_string(i)));
      e.Triple(person, e.Ub("emailAddress"),
               e.Lit(std::string(profile.cls) + std::to_string(i) + "@" +
                     dept_iri));
      e.Triple(person, e.Ub("telephone"), e.Lit("xxx-xxx-xxxx"));
      const rdf::TermId degree_univ = university;  // simplification
      e.Triple(person, e.Ub("undergraduateDegreeFrom"), degree_univ);
      e.Triple(degree_univ, e.Ub("hasAlumnus"), person);
      all_faculty.push_back(person);
      if (std::string(profile.cls).find("Professor") != std::string::npos) {
        professors.push_back(person);
      }

      // Courses: 1-2 undergraduate + 1-2 graduate per faculty member.
      const std::size_t n_courses = e.rng().Uniform(1, 2);
      for (std::size_t c = 0; c < n_courses; ++c) {
        const rdf::TermId course = e.Iri(
            dept_iri + "/Course" + std::to_string(courses.size()));
        e.TypeOf(course, "Course");
        e.Triple(person, e.Ub("teacherOf"), course);
        courses.push_back(course);
      }
      const std::size_t n_grad = e.rng().Uniform(1, 2);
      for (std::size_t c = 0; c < n_grad; ++c) {
        const rdf::TermId course =
            e.Iri(dept_iri + "/GraduateCourse" +
                  std::to_string(graduate_courses.size()));
        e.TypeOf(course, "GraduateCourse");
        e.Triple(person, e.Ub("teacherOf"), course);
        graduate_courses.push_back(course);
      }
      // Publications.
      const std::size_t pubs = e.rng().Uniform(0, 5);
      for (std::size_t p = 0; p < pubs; ++p) {
        const rdf::TermId publication = e.Iri(
            dept_iri + "/" + profile.cls + std::to_string(i) +
            "/Publication" + std::to_string(p));
        e.TypeOf(publication, "Publication");
        e.Triple(publication, e.Ub("publicationAuthor"), person);
      }
    }
  }
  // The department head: a chair.
  if (!professors.empty()) {
    const rdf::TermId chair = professors.front();
    e.TypeOf(chair, "Chair");
    e.Triple(chair, e.Ub("headOf"), department);
  }

  // Students.
  const std::size_t undergrads =
      e.Scaled(all_faculty.size() * 8, all_faculty.size() * 14, 1.0);
  for (std::size_t s = 0; s < undergrads; ++s) {
    const rdf::TermId student =
        e.Iri(dept_iri + "/UndergraduateStudent" + std::to_string(s));
    e.TypeOf(student, "UndergraduateStudent");
    e.Triple(student, e.Ub("memberOf"), department);
    const std::size_t takes = e.rng().Uniform(2, 4);
    for (std::size_t c = 0; c < takes && !courses.empty(); ++c) {
      e.Triple(student, e.Ub("takesCourse"),
               courses[e.rng().Uniform(0, courses.size() - 1)]);
    }
  }
  const std::size_t grads =
      e.Scaled(all_faculty.size() * 3, all_faculty.size() * 4, 1.0);
  for (std::size_t s = 0; s < grads; ++s) {
    const rdf::TermId student =
        e.Iri(dept_iri + "/GraduateStudent" + std::to_string(s));
    e.TypeOf(student, "GraduateStudent");
    e.Triple(student, e.Ub("memberOf"), department);
    e.Triple(student, e.Ub("undergraduateDegreeFrom"), university);
    e.Triple(university, e.Ub("hasAlumnus"), student);
    e.Triple(student, e.Ub("emailAddress"),
             e.Lit("GraduateStudent" + std::to_string(s) + "@" + dept_iri));
    if (!professors.empty()) {
      e.Triple(student, e.Ub("advisor"),
               professors[e.rng().Uniform(0, professors.size() - 1)]);
    }
    const std::size_t takes = e.rng().Uniform(1, 3);
    for (std::size_t c = 0; c < takes && !graduate_courses.empty(); ++c) {
      e.Triple(student, e.Ub("takesCourse"),
               graduate_courses[e.rng().Uniform(
                   0, graduate_courses.size() - 1)]);
    }
  }
}

}  // namespace

rdf::Graph GenerateLubmData(rdf::TermDictionary* dict,
                            const LubmDataOptions& options) {
  rdf::Graph graph;
  util::Rng rng(options.seed);
  Emitter e(dict, &graph, &rng);
  for (std::size_t u = 0; u < options.universities; ++u) {
    const std::string univ_iri =
        "http://www.University" + std::to_string(u) + ".edu";
    const rdf::TermId university = e.Iri(univ_iri);
    e.TypeOf(university, "University");
    e.Triple(university, e.Ub("name"),
             e.Lit("University" + std::to_string(u)));
    const std::size_t departments = e.Scaled(15, 25, options.scale);
    for (std::size_t d = 0; d < departments; ++d) {
      EmitDepartment(e, univ_iri, university, d, options.scale);
    }
  }
  return graph;
}

}  // namespace workload
}  // namespace rdfc
