#include "workload/workload.h"

#include "util/rng.h"

namespace rdfc {
namespace workload {

namespace {

constexpr char kSnb[] = "http://ldbc.eu/snb/vocabulary/";

/// LDBC SNB vocabulary subset used by the interactive workload shapes.
class LdbcVocab {
 public:
  explicit LdbcVocab(rdf::TermDictionary* dict) : dict_(dict) {
    type = dict_->MakeIri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
    person = C("Person");
    post = C("Post");
    comment = C("Comment");
    forum = C("Forum");
    tag = C("Tag");
    city = C("City");
    country = C("Country");
    company = C("Company");
    university = C("University");
    knows = P("knows");
    has_creator = P("hasCreator");
    reply_of = P("replyOf");
    container_of = P("containerOf");
    has_member = P("hasMember");
    has_moderator = P("hasModerator");
    has_tag = P("hasTag");
    has_interest = P("hasInterest");
    is_located_in = P("isLocatedIn");
    is_part_of = P("isPartOf");
    work_at = P("workAt");
    study_at = P("studyAt");
    first_name = P("firstName");
    last_name = P("lastName");
    birthday = P("birthday");
    creation_date = P("creationDate");
    content = P("content");
    browser_used = P("browserUsed");
    location_ip = P("locationIP");
    likes = P("likes");
  }

  rdf::TermId P(const std::string& local) {
    return dict_->MakeIri(std::string(kSnb) + local);
  }
  rdf::TermId C(const std::string& local) {
    return dict_->MakeIri(std::string(kSnb) + "class/" + local);
  }
  rdf::TermId PersonInstance(util::Rng* rng) {
    return dict_->MakeIri(std::string(kSnb) + "person/" +
                          std::to_string(rng->Uniform(0, 200)));
  }
  rdf::TermId TagInstance(util::Rng* rng) {
    return dict_->MakeIri(std::string(kSnb) + "tag/" +
                          std::to_string(rng->Uniform(0, 80)));
  }
  rdf::TermId CountryInstance(util::Rng* rng) {
    return dict_->MakeIri(std::string(kSnb) + "country/" +
                          std::to_string(rng->Uniform(0, 30)));
  }

  rdf::TermId type, person, post, comment, forum, tag, city, country, company,
      university, knows, has_creator, reply_of, container_of, has_member,
      has_moderator, has_tag, has_interest, is_located_in, is_part_of,
      work_at, study_at, first_name, last_name, birthday, creation_date,
      content, browser_used, location_ip, likes;

 private:
  rdf::TermDictionary* dict_;
};

}  // namespace

std::vector<query::BgpQuery> GenerateLdbc(rdf::TermDictionary* dict,
                                          std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  LdbcVocab v(dict);
  std::vector<query::BgpQuery> out;
  out.reserve(n);
  auto var = [&](const std::string& name) {
    return dict->MakeVariable(name);
  };

  for (std::size_t i = 0; i < n; ++i) {
    query::BgpQuery q;
    const std::size_t shape = i % 8;  // cycle through the interactive shapes
    const rdf::TermId p1 = var("person1");
    const rdf::TermId p2 = var("person2");
    const rdf::TermId msg = var("message");
    switch (shape) {
      case 0: {
        // IC1-like: friends-of-friends of a person with profile details.
        const rdf::TermId start = v.PersonInstance(&rng);
        q.AddDistinguished(p2);
        q.AddPattern(start, v.knows, p1);
        q.AddPattern(p1, v.knows, p2);
        q.AddPattern(p2, v.type, v.person);
        q.AddPattern(p2, v.first_name, var("fn"));
        q.AddPattern(p2, v.last_name, var("ln"));
        q.AddPattern(p2, v.birthday, var("bday"));
        q.AddPattern(p2, v.is_located_in, var("city"));
        q.AddPattern(var("city"), v.type, v.city);
        q.AddPattern(var("city"), v.is_part_of, v.CountryInstance(&rng));
        break;
      }
      case 1: {
        // IC2-like: recent messages of friends.
        const rdf::TermId start = v.PersonInstance(&rng);
        q.AddDistinguished(msg);
        q.AddPattern(start, v.knows, p1);
        q.AddPattern(msg, v.has_creator, p1);
        q.AddPattern(msg, v.creation_date, var("date"));
        q.AddPattern(msg, v.content, var("content"));
        q.AddPattern(p1, v.first_name, var("fn"));
        q.AddPattern(p1, v.last_name, var("ln"));
        break;
      }
      case 2: {
        // IC3-like: friends in two countries (non-f-graph: isLocatedIn used
        // twice from different subjects onto the same country variable).
        const rdf::TermId start = v.PersonInstance(&rng);
        q.AddDistinguished(p1);
        q.AddDistinguished(p2);
        q.AddPattern(start, v.knows, p1);
        q.AddPattern(start, v.knows, p2);
        q.AddPattern(p1, v.is_located_in, var("cityA"));
        q.AddPattern(p2, v.is_located_in, var("cityB"));
        q.AddPattern(var("cityA"), v.is_part_of, var("country"));
        q.AddPattern(var("cityB"), v.is_part_of, var("country"));
        break;
      }
      case 3: {
        // IC5-like: forums joined by friends, with posts by those friends
        // in those forums (cyclic: forum-post-creator-member square).
        const rdf::TermId start = v.PersonInstance(&rng);
        const rdf::TermId forum = var("forum");
        q.AddDistinguished(forum);
        q.AddPattern(start, v.knows, p1);
        q.AddPattern(forum, v.has_member, p1);
        q.AddPattern(forum, v.container_of, msg);
        q.AddPattern(msg, v.has_creator, p1);
        q.AddPattern(forum, v.type, v.forum);
        q.AddPattern(msg, v.type, v.post);
        break;
      }
      case 4: {
        // IC6-like: posts of friends with a given tag.
        const rdf::TermId start = v.PersonInstance(&rng);
        q.AddDistinguished(msg);
        q.AddPattern(start, v.knows, p1);
        q.AddPattern(msg, v.has_creator, p1);
        q.AddPattern(msg, v.type, v.post);
        q.AddPattern(msg, v.has_tag, v.TagInstance(&rng));
        q.AddPattern(msg, v.has_tag, var("otherTag"));
        q.AddPattern(var("otherTag"), v.type, v.tag);
        break;
      }
      case 5: {
        // IC11-like: friends working at companies in a country.
        const rdf::TermId start = v.PersonInstance(&rng);
        q.AddDistinguished(p1);
        q.AddPattern(start, v.knows, p1);
        q.AddPattern(p1, v.work_at, var("company"));
        q.AddPattern(var("company"), v.type, v.company);
        q.AddPattern(var("company"), v.is_located_in, v.CountryInstance(&rng));
        q.AddPattern(p1, v.first_name, var("fn"));
        break;
      }
      case 6: {
        // IS7/IC8-like: replies to a person's messages (path + star).
        const rdf::TermId start = v.PersonInstance(&rng);
        const rdf::TermId reply = var("reply");
        q.AddDistinguished(reply);
        q.AddPattern(msg, v.has_creator, start);
        q.AddPattern(reply, v.reply_of, msg);
        q.AddPattern(reply, v.type, v.comment);
        q.AddPattern(reply, v.has_creator, p1);
        q.AddPattern(reply, v.creation_date, var("date"));
        q.AddPattern(reply, v.content, var("content"));
        q.AddPattern(p1, v.first_name, var("fn"));
        q.AddPattern(p1, v.last_name, var("ln"));
        break;
      }
      default: {
        // Triangle-closure shape (cyclic): mutual friends who both like a
        // message created by the third.
        q.AddDistinguished(p1);
        const rdf::TermId p3 = var("person3");
        q.AddPattern(p1, v.knows, p2);
        q.AddPattern(p2, v.knows, p3);
        q.AddPattern(p3, v.knows, p1);
        q.AddPattern(msg, v.has_creator, p3);
        q.AddPattern(p1, v.likes, msg);
        q.AddPattern(p2, v.likes, msg);
        q.AddPattern(p1, v.type, v.person);
        q.AddPattern(p2, v.type, v.person);
        q.AddPattern(p3, v.type, v.person);
        break;
      }
    }
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace workload
}  // namespace rdfc
