#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "query/bgp_query.h"
#include "rdf/dictionary.h"
#include "rdfs/schema.h"
#include "util/status.h"

namespace rdfc {
namespace workload {

/// The five query workloads of the paper's evaluation (Section 7).  The real
/// logs are substituted with structure-matched generators — see DESIGN.md
/// "Substitutions" — except LUBM and LDBC whose query sets are small enough
/// to reproduce faithfully.
enum class WorkloadId : std::uint8_t {
  kDbpedia = 0,
  kWatdiv = 1,
  kBsbm = 2,
  kLubm = 3,
  kLdbc = 4,
};
inline constexpr std::size_t kNumWorkloads = 5;

const char* WorkloadName(WorkloadId id);

struct WorkloadQuery {
  query::BgpQuery query;
  WorkloadId source = WorkloadId::kDbpedia;
  std::uint64_t seq = 0;  // position within the combined workload
};

/// Per-workload query counts.  Defaults are the paper's counts scaled by
/// 1/10 (the harness rescales via RDFC_SCALE; per-query averages are
/// scale-independent).
struct WorkloadOptions {
  std::uint64_t seed = 42;
  std::size_t dbpedia = 128'771;  // paper: 1,287,711
  std::size_t watdiv = 14'880;    // paper: 148,800
  std::size_t bsbm = 9'980;       // paper: 99,800
  std::size_t lubm = 14;          // paper: 14 (fixed query set)
  std::size_t ldbc = 53;          // paper: 53 (fixed query set)

  std::size_t total() const {
    return dbpedia + watdiv + bsbm + lubm + ldbc;
  }
};

/// Reads RDFC_SCALE from the environment (default `fallback`); 1.0 means the
/// paper's full 1.54 M-query corpus.
double ScaleFromEnv(double fallback = 0.1);

/// Paper-proportional counts at `scale` (LUBM/LDBC stay at their fixed
/// sizes; they are query *sets*, not logs).
WorkloadOptions ScaledWorkloadOptions(double scale, std::uint64_t seed = 42);

// --- Individual generators -------------------------------------------------

/// DBpedia-log-alike: small, heavily recurring star/path queries with a
/// Zipf-skewed vocabulary, tuned to the paper's measured mix — ≈99.7 %
/// IRI-only predicates and ≈73 % f-graph queries (Section 3).
std::vector<query::BgpQuery> GenerateDbpedia(rdf::TermDictionary* dict,
                                             std::size_t n,
                                             std::uint64_t seed);

/// WatDiv-alike: linear / star / snowflake / complex templates over an
/// 86-predicate e-commerce schema; no fixed pattern set.
std::vector<query::BgpQuery> GenerateWatdiv(rdf::TermDictionary* dict,
                                            std::size_t n, std::uint64_t seed);

/// BSBM-alike: parameter instantiations of 12 base query patterns over the
/// Berlin product/offer/review schema.
std::vector<query::BgpQuery> GenerateBsbm(rdf::TermDictionary* dict,
                                          std::size_t n, std::uint64_t seed);

/// LDBC SNB-alike: the 53-query interactive workload shape — larger, partly
/// cyclic social-network BGPs.
std::vector<query::BgpQuery> GenerateLdbc(rdf::TermDictionary* dict,
                                          std::size_t n, std::uint64_t seed);

// --- LUBM (faithful) --------------------------------------------------------

/// The 14 LUBM queries (hand-translated BGPs over univ-bench).
[[nodiscard]] util::Result<std::vector<query::BgpQuery>> LubmQueries(
    rdf::TermDictionary* dict);

/// The univ-bench class/property hierarchy with domains and ranges, as an
/// RdfsSchema (the substrate of the Section 6 / Figure 6 experiment).
rdfs::RdfsSchema LubmSchema(rdf::TermDictionary* dict);

/// The Section 7.2 RDFS workload extension: grows the 14 LUBM queries to `n`
/// by (i) swapping type objects with super/sub-classes, (ii) swapping
/// predicates with super/sub-properties, (iii) occasionally adding
/// domain/range-derived type triples — so correct containment answers
/// require the RDFS extension step.
[[nodiscard]] util::Result<std::vector<query::BgpQuery>> GenerateLubmExtended(
    rdf::TermDictionary* dict, std::size_t n, std::uint64_t seed);

// --- Adversarial (resilience testing) ---------------------------------------

/// A view/probe pair engineered to maximise verification cost relative to
/// its size (DESIGN.md "Resilience").  The probe is a k-spoke star whose
/// objects collapse into one witness class of nd_degree k, with `r`/`rp`
/// tails on two different spokes; the view demands both tails on the *same*
/// p-neighbour.  The PTime filter therefore passes, but no homomorphism
/// exists, and discovering that exhausts ~k^(m+1) candidate assignments —
/// the shape the probe budget and quarantine breaker exist for.
struct AdversarialCase {
  query::BgpQuery view;   // index this one
  query::BgpQuery probe;  // then probe with this one
};

/// Requires k >= 2 for the filter to pass while verification fails; cost
/// grows as ~k^(m+1) NP search states.
AdversarialCase MakeAdversarialCase(rdf::TermDictionary* dict, std::size_t k,
                                    std::size_t m);

// --- Combined ---------------------------------------------------------------

/// Generates all five workloads, interleaved deterministically (paper
/// Section 7.1 inserts the combined workload).
std::vector<WorkloadQuery> GenerateCombined(rdf::TermDictionary* dict,
                                            const WorkloadOptions& options);

}  // namespace workload
}  // namespace rdfc
