#pragma once

#include <cstdint>

#include "rdf/dictionary.h"
#include "rdf/graph.h"

namespace rdfc {
namespace workload {

/// Options for the univ-bench instance-data generator.  `scale` multiplies
/// the per-department entity counts (1.0 ≈ the original UBA profile of
/// roughly 15-25 departments with ~85-130 faculty-plus-staff each; the
/// default keeps test graphs small).
struct LubmDataOptions {
  std::size_t universities = 1;
  double scale = 0.1;
  std::uint64_t seed = 42;
};

/// Generates a univ-bench RDF instance graph with the original generator's
/// entity naming conventions (`http://www.Department<d>.University<u>.edu`
/// and `<dept>/FullProfessor<i>` style IRIs), so the 14 LUBM queries of
/// LubmQueries() — which reference Department0/University0 individuals —
/// have non-empty answers by construction once the graph is materialised
/// under LubmSchema().
///
/// One deliberate deviation: univ-bench declares `ub:hasAlumnus` as the OWL
/// inverse of `ub:degreeFrom`, which RDFS cannot derive; the generator
/// asserts both directions explicitly so Q13 works in the RDFS fragment;
/// likewise the transitive subOrganizationOf closure edge for Q11.
rdf::Graph GenerateLubmData(rdf::TermDictionary* dict,
                            const LubmDataOptions& options = {});

}  // namespace workload
}  // namespace rdfc
