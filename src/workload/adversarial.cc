#include "workload/workload.h"

namespace rdfc {
namespace workload {

AdversarialCase MakeAdversarialCase(rdf::TermDictionary* dict, std::size_t k,
                                    std::size_t m) {
  const std::string ns = "http://rdfc.example/adversarial#";
  const rdf::TermId p = dict->MakeIri(ns + "p");
  const rdf::TermId r = dict->MakeIri(ns + "r");
  const rdf::TermId rp = dict->MakeIri(ns + "rp");

  AdversarialCase out;

  // Probe: a star ?a p ?b1 .. ?a p ?bk merges every ?bi into one witness
  // class B (nd_degree = k), and two of the spokes grow distinguishing
  // tails, so B carries both an `r` and an `rp` out-edge.
  out.probe.set_form(query::QueryForm::kAsk);
  const rdf::TermId a = dict->MakeVariable("a");
  std::vector<rdf::TermId> b;
  for (std::size_t i = 0; i < k; ++i) {
    b.push_back(dict->MakeVariable("b" + std::to_string(i)));
    out.probe.AddPattern(a, p, b.back());
  }
  if (k >= 2) {
    out.probe.AddPattern(b[0], r, dict->MakeVariable("e0"));
    out.probe.AddPattern(b[1], rp, dict->MakeVariable("e1"));
  }

  // View: a star around ?x with m + 1 spokes whose hub neighbour ?y needs
  // BOTH tails.  The witness filter passes — class B has r and rp
  // out-edges — but no single ?bi of the probe has both, so there is no
  // homomorphism.  The verifier must discover that by exhausting the
  // product of candidate assignments for ?y, ?z1..?zm (each ranging over
  // the k-way ambiguous B members): ~k^(m+1) states before concluding
  // "not contained".  Exactly the shape the probe budget exists for.
  out.view.set_form(query::QueryForm::kAsk);
  const rdf::TermId x = dict->MakeVariable("x");
  const rdf::TermId y = dict->MakeVariable("y");
  out.view.AddPattern(x, p, y);
  for (std::size_t j = 0; j < m; ++j) {
    out.view.AddPattern(x, p, dict->MakeVariable("z" + std::to_string(j)));
  }
  out.view.AddPattern(y, r, dict->MakeVariable("w0"));
  out.view.AddPattern(y, rp, dict->MakeVariable("w1"));
  return out;
}

}  // namespace workload
}  // namespace rdfc
