#include "workload/workload.h"

#include "util/rng.h"

namespace rdfc {
namespace workload {

namespace {

/// Vocabulary pools for the DBpedia-alike generator.  Pool sizes follow the
/// corpus size so the distinct-query ratio (the paper observed ≈26 % distinct
/// across the combined corpus) stays roughly scale-invariant.
class DbpediaVocab {
 public:
  DbpediaVocab(rdf::TermDictionary* dict, std::size_t n) : dict_(dict) {
    num_entities_ = std::max<std::size_t>(150, n / 40);
    num_predicates_ = 300;
    num_classes_ = 120;
    num_literals_ = std::max<std::size_t>(60, n / 120);
    type_ = dict_->MakeIri(
        "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
  }

  rdf::TermId Predicate(util::Rng* rng) {
    return dict_->MakeIri("http://dbpedia.org/ontology/prop" +
                          std::to_string(rng->Zipf(num_predicates_, 1.4)));
  }
  rdf::TermId Entity(util::Rng* rng) {
    return dict_->MakeIri("http://dbpedia.org/resource/Entity" +
                          std::to_string(rng->Zipf(num_entities_, 1.2)));
  }
  rdf::TermId Class(util::Rng* rng) {
    return dict_->MakeIri("http://dbpedia.org/ontology/Class" +
                          std::to_string(rng->Zipf(num_classes_, 1.3)));
  }
  rdf::TermId Literal(util::Rng* rng) {
    return dict_->MakeLiteral("\"value " +
                              std::to_string(rng->Zipf(num_literals_, 1.2)) +
                              "\"@en");
  }
  rdf::TermId Var(std::uint32_t k) {
    return dict_->MakeVariable("v" + std::to_string(k));
  }
  rdf::TermId type() const { return type_; }

  /// `count` distinct predicates, for f-graph stars.
  std::vector<rdf::TermId> DistinctPredicates(util::Rng* rng,
                                              std::size_t count) {
    std::vector<rdf::TermId> out;
    while (out.size() < count) {
      const rdf::TermId p = Predicate(rng);
      bool dup = false;
      for (rdf::TermId q : out) dup = dup || q == p;
      if (!dup) out.push_back(p);
    }
    return out;
  }

 private:
  rdf::TermDictionary* dict_;
  std::size_t num_entities_;
  std::size_t num_predicates_;
  std::size_t num_classes_;
  std::size_t num_literals_;
  rdf::TermId type_;
};

/// Object of a star/path edge: entity, class-typed literal, or variable.
rdf::TermId DrawObject(DbpediaVocab* vocab, util::Rng* rng,
                       std::uint32_t* next_var) {
  const double r = rng->UniformReal();
  if (r < 0.45) return vocab->Entity(rng);
  if (r < 0.60) return vocab->Literal(rng);
  return vocab->Var((*next_var)++);
}

}  // namespace

std::vector<query::BgpQuery> GenerateDbpedia(rdf::TermDictionary* dict,
                                             std::size_t n,
                                             std::uint64_t seed) {
  util::Rng rng(seed);
  DbpediaVocab vocab(dict, n);

  // Two-level generation: a pool of distinct queries is built first, then
  // the log is emitted as Zipf-skewed draws from the pool.  Real query logs
  // repeat heavily (the paper dedups 1,536,378 insertions to 397,507
  // distinct queries, ~26 %); the pool size fixes that ratio.
  const std::size_t pool_size = std::max<std::size_t>(20, (n * 28) / 100);
  std::vector<query::BgpQuery> pool;
  pool.reserve(pool_size);

  for (std::size_t i = 0; i < pool_size; ++i) {
    query::BgpQuery q;
    std::uint32_t next_var = 1;
    const rdf::TermId x = vocab.Var(next_var++);
    q.AddDistinguished(x);
    const double shape = rng.UniformReal();

    if (shape < 0.43) {
      // Single-triple lookups — the dominant DBpedia log shape.
      const double dir = rng.UniformReal();
      if (dir < 0.4) {
        q.AddPattern(x, vocab.type(), vocab.Class(&rng));
      } else if (dir < 0.75) {
        q.AddPattern(x, vocab.Predicate(&rng), vocab.Entity(&rng));
      } else {
        q.AddPattern(vocab.Entity(&rng), vocab.Predicate(&rng), x);
      }
    } else if (shape < 0.59) {
      // F-graph star: 2-6 distinct predicates around ?x.
      const auto arms = static_cast<std::size_t>(rng.Uniform(2, 6));
      for (rdf::TermId p : vocab.DistinctPredicates(&rng, arms)) {
        q.AddPattern(x, p, DrawObject(&vocab, &rng, &next_var));
      }
      if (rng.Chance(0.5)) {
        q.AddPattern(x, vocab.type(), vocab.Class(&rng));
      }
    } else if (shape < 0.71) {
      // F-graph path: 2-5 hops with distinct predicates along the chain.
      const auto hops = static_cast<std::size_t>(rng.Uniform(2, 5));
      rdf::TermId current = x;
      for (std::size_t h = 0; h < hops; ++h) {
        const rdf::TermId next = (h + 1 == hops && rng.Chance(0.3))
                                     ? vocab.Entity(&rng)
                                     : vocab.Var(next_var++);
        q.AddPattern(current, vocab.Predicate(&rng), next);
        current = next;
        if (dict->IsConstant(current)) break;
      }
    } else if (shape < 0.935) {
      // Non-f-graph acyclic: a predicate repeated with different objects
      // (e.g. two rdf:type constraints), plus optional extra arms.
      const rdf::TermId p =
          rng.Chance(0.5) ? vocab.type() : vocab.Predicate(&rng);
      q.AddPattern(x, p, rng.Chance(0.6) ? vocab.Class(&rng)
                                         : DrawObject(&vocab, &rng, &next_var));
      q.AddPattern(x, p, rng.Chance(0.6) ? vocab.Class(&rng)
                                         : DrawObject(&vocab, &rng, &next_var));
      const auto extra = static_cast<std::size_t>(rng.Uniform(0, 2));
      for (rdf::TermId arm : vocab.DistinctPredicates(&rng, extra)) {
        q.AddPattern(x, arm, DrawObject(&vocab, &rng, &next_var));
      }
    } else if (shape < 0.997) {
      // Cyclic queries.  A triangle over distinct vertices keeps the f-graph
      // property (no (s,p) or (p,o) pair repeats); the diamond with a shared
      // predicate violates both conditions and is cyclic.
      const rdf::TermId y = vocab.Var(next_var++);
      const rdf::TermId z = vocab.Var(next_var++);
      if (rng.Chance(0.5)) {
        const std::vector<rdf::TermId> preds =
            vocab.DistinctPredicates(&rng, 3);
        q.AddPattern(x, preds[0], y);
        q.AddPattern(y, preds[1], z);
        q.AddPattern(z, preds[2], x);
      } else {
        const rdf::TermId w = vocab.Var(next_var++);
        const std::vector<rdf::TermId> preds =
            vocab.DistinctPredicates(&rng, 2);
        q.AddPattern(x, preds[0], y);
        q.AddPattern(x, preds[0], z);
        q.AddPattern(y, preds[1], w);
        q.AddPattern(z, preds[1], w);
      }
    } else {
      // Variable predicate — 0.3 % of the log (Section 3: 99.707 % of
      // DBpedia queries have IRI-only predicates).
      const rdf::TermId p = vocab.Var(next_var++);
      q.AddPattern(x, p, vocab.Entity(&rng));
      if (rng.Chance(0.5)) q.AddPattern(x, vocab.type(), vocab.Class(&rng));
    }
    pool.push_back(std::move(q));
  }

  std::vector<query::BgpQuery> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(pool[rng.Zipf(pool.size(), 0.5)]);
  }
  return out;
}

}  // namespace workload
}  // namespace rdfc
