#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace rdfc {
namespace sparql {

/// Token taxonomy for the SPARQL subset grammar (SELECT/ASK over a BGP).
enum class TokenType : std::uint8_t {
  kKeyword,    // SELECT, ASK, WHERE, PREFIX, DISTINCT, BASE, FILTER (case-insensitive)
  kIriRef,     // <...> with brackets stripped
  kPrefixedName,  // prefix:local (text keeps the colon)
  kVariable,   // ?name or $name, text is the bare name
  kString,     // "..." with escapes resolved; text keeps surrounding quotes
  kLangTag,    // @en
  kDoubleCaret,   // ^^
  kNumber,     // integer or decimal, text as written
  kBlankNode,  // _:label, text is the bare label
  kA,          // the `a` keyword (rdf:type)
  kLBrace,     // {
  kRBrace,     // }
  kDot,        // .
  kSemicolon,  // ;
  kComma,      // ,
  kStar,       // *
  kLParen,     // (
  kRParen,     // )
  kOperator,   // comparison/arithmetic operator inside FILTER expressions
  kEof,
};

struct SparqlToken {
  TokenType type;
  std::string text;
  std::size_t offset;  // byte offset into the source, for error messages
};

const char* TokenTypeName(TokenType type);

/// Tokenises a SPARQL query string.  Comments (`#` to end of line) and
/// whitespace are skipped.  Keywords are upper-cased in `text`.
[[nodiscard]] util::Result<std::vector<SparqlToken>> Tokenize(std::string_view text);

}  // namespace sparql
}  // namespace rdfc
