#pragma once

#include <string>
#include <string_view>
#include <unordered_map>

#include "query/bgp_query.h"
#include "rdf/dictionary.h"
#include "util/status.h"

namespace rdfc {
namespace sparql {

/// Options controlling leniencies of the parser.
struct ParserOptions {
  /// When true, FILTER / LIMIT / ORDER BY clauses are skipped instead of
  /// rejected — the containment machinery only sees the BGP, mirroring the
  /// paper's treatment of query logs (everything reduces to the WHERE BGP).
  bool skip_solution_modifiers = true;
  /// Extra prefix declarations available without in-query PREFIX lines.
  std::unordered_map<std::string, std::string> default_prefixes;
};

/// Parses a SPARQL SELECT/ASK query over a basic graph pattern.
///
/// Grammar subset:
///   Query      := Prologue (SelectQuery | AskQuery)
///   Prologue   := (PREFIX pname: <iri>)*
///   SelectQuery:= SELECT (DISTINCT|REDUCED)? (Var+ | '*') WHERE? GroupGraph
///   AskQuery   := ASK WHERE? GroupGraph
///   GroupGraph := '{' TriplesBlock '}'
///   TriplesBlock supports '.' separators, ';' predicate lists, ',' object
///   lists, the 'a' keyword, typed/lang literals, numbers and blank nodes
///   (parsed as fresh non-distinguished variables, per SPARQL semantics).
///
/// All terms are interned into `dict`.  Blank nodes in queries become fresh
/// variables named `_bnN`.
[[nodiscard]] util::Result<query::BgpQuery> ParseQuery(std::string_view text,
                                         rdf::TermDictionary* dict,
                                         const ParserOptions& options = {});

/// A parsed query whose WHERE clause may be a UNION of basic graph patterns:
/// `WHERE { { A } UNION { B } UNION { C } }`.  Plain BGP queries parse to a
/// single branch.  Each branch carries the query's form and projection, so
/// branches plug directly into containment::ContainedInUnion.
struct ParsedUnionQuery {
  query::QueryForm form = query::QueryForm::kSelect;
  bool select_all = false;
  std::vector<rdf::TermId> distinguished;
  std::vector<query::BgpQuery> branches;
};

/// Like ParseQuery but accepting UNION bodies.  ParseQuery rejects unions
/// (callers that can only handle conjunctive queries keep a clear error).
[[nodiscard]] util::Result<ParsedUnionQuery> ParseUnionQuery(
    std::string_view text, rdf::TermDictionary* dict,
    const ParserOptions& options = {});

}  // namespace sparql
}  // namespace rdfc
