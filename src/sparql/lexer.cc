#include "sparql/lexer.h"

#include <cctype>
#include <unordered_set>

namespace rdfc {
namespace sparql {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* kKeywords = new std::unordered_set<std::string>{  // NOLINT(raw-new): leaked singleton
      "SELECT", "ASK", "WHERE", "PREFIX", "BASE", "DISTINCT", "REDUCED",
      "FILTER", "LIMIT", "OFFSET", "ORDER", "BY", "UNION", "OPTIONAL",
      "MINUS", "GRAPH", "SERVICE",
  };
  return *kKeywords;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.';
}

}  // namespace

const char* TokenTypeName(TokenType type) {
  switch (type) {
    case TokenType::kKeyword: return "keyword";
    case TokenType::kIriRef: return "IRI";
    case TokenType::kPrefixedName: return "prefixed name";
    case TokenType::kVariable: return "variable";
    case TokenType::kString: return "string";
    case TokenType::kLangTag: return "language tag";
    case TokenType::kDoubleCaret: return "^^";
    case TokenType::kNumber: return "number";
    case TokenType::kBlankNode: return "blank node";
    case TokenType::kA: return "'a'";
    case TokenType::kLBrace: return "'{'";
    case TokenType::kRBrace: return "'}'";
    case TokenType::kDot: return "'.'";
    case TokenType::kSemicolon: return "';'";
    case TokenType::kComma: return "','";
    case TokenType::kStar: return "'*'";
    case TokenType::kLParen: return "'('";
    case TokenType::kRParen: return "')'";
    case TokenType::kOperator: return "operator";
    case TokenType::kEof: return "end of input";
  }
  return "unknown";
}

util::Result<std::vector<SparqlToken>> Tokenize(std::string_view text) {
  std::vector<SparqlToken> tokens;
  std::size_t pos = 0;
  const std::size_t n = text.size();

  auto error = [&](const std::string& msg) {
    return util::Status::ParseError(msg + " at offset " + std::to_string(pos));
  };
  auto push = [&](TokenType type, std::string tok_text, std::size_t offset) {
    tokens.push_back(SparqlToken{type, std::move(tok_text), offset});
  };

  while (pos < n) {
    const char c = text[pos];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
      continue;
    }
    if (c == '#') {
      while (pos < n && text[pos] != '\n') ++pos;
      continue;
    }
    const std::size_t start = pos;
    switch (c) {
      case '{': push(TokenType::kLBrace, "{", start); ++pos; continue;
      case '}': push(TokenType::kRBrace, "}", start); ++pos; continue;
      case '.': push(TokenType::kDot, ".", start); ++pos; continue;
      case ';': push(TokenType::kSemicolon, ";", start); ++pos; continue;
      case ',': push(TokenType::kComma, ",", start); ++pos; continue;
      case '*': push(TokenType::kStar, "*", start); ++pos; continue;
      case '(': push(TokenType::kLParen, "(", start); ++pos; continue;
      case ')': push(TokenType::kRParen, ")", start); ++pos; continue;
      default: break;
    }
    if (c == '<') {
      // '<' followed by whitespace, '=', a variable sigil, or end is a
      // comparison operator (in a FILTER); otherwise it opens an IRI
      // reference (IRIs cannot contain '?' at position 0 in this grammar).
      if (pos + 1 >= n ||
          std::isspace(static_cast<unsigned char>(text[pos + 1])) ||
          text[pos + 1] == '=' || text[pos + 1] == '?' ||
          text[pos + 1] == '$') {
        ++pos;
        push(TokenType::kOperator, "<", start);
        continue;
      }
      ++pos;
      std::string iri;
      while (pos < n && text[pos] != '>') iri += text[pos++];
      if (pos >= n) return error("unterminated IRI");
      ++pos;
      push(TokenType::kIriRef, std::move(iri), start);
      continue;
    }
    if (c == '?' || c == '$') {
      ++pos;
      std::string name;
      while (pos < n && (std::isalnum(static_cast<unsigned char>(text[pos])) ||
                         text[pos] == '_')) {
        name += text[pos++];
      }
      if (name.empty()) return error("empty variable name");
      push(TokenType::kVariable, std::move(name), start);
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++pos;
      std::string value;
      while (pos < n && text[pos] != quote) {
        char ch = text[pos++];
        if (ch == '\\' && pos < n) {
          const char esc = text[pos++];
          switch (esc) {
            case 'n': ch = '\n'; break;
            case 't': ch = '\t'; break;
            case 'r': ch = '\r'; break;
            case '\\': ch = '\\'; break;
            case '"': ch = '"'; break;
            case '\'': ch = '\''; break;
            default: ch = esc; break;
          }
        }
        value += ch;
      }
      if (pos >= n) return error("unterminated string literal");
      ++pos;
      push(TokenType::kString, "\"" + value + "\"", start);
      continue;
    }
    if (c == '@') {
      ++pos;
      std::string tag;
      while (pos < n && (std::isalnum(static_cast<unsigned char>(text[pos])) ||
                         text[pos] == '-')) {
        tag += text[pos++];
      }
      if (tag.empty()) return error("empty language tag");
      // `@prefix` style directives are not SPARQL; treat as keyword PREFIX.
      if (ToUpper(tag) == "PREFIX") {
        push(TokenType::kKeyword, "PREFIX", start);
      } else {
        push(TokenType::kLangTag, std::move(tag), start);
      }
      continue;
    }
    if (c == '^') {
      if (pos + 1 < n && text[pos + 1] == '^') {
        pos += 2;
        push(TokenType::kDoubleCaret, "^^", start);
        continue;
      }
      return error("stray '^'");
    }
    if (c == '_' && pos + 1 < n && text[pos + 1] == ':') {
      pos += 2;
      std::string label;
      while (pos < n && (std::isalnum(static_cast<unsigned char>(text[pos])) ||
                         text[pos] == '_')) {
        label += text[pos++];
      }
      if (label.empty()) return error("empty blank node label");
      push(TokenType::kBlankNode, std::move(label), start);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        ((c == '-' || c == '+') && pos + 1 < n &&
         std::isdigit(static_cast<unsigned char>(text[pos + 1])))) {
      std::string num;
      if (c == '-' || c == '+') num += text[pos++];
      bool saw_dot = false;
      while (pos < n && (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                         (!saw_dot && text[pos] == '.' && pos + 1 < n &&
                          std::isdigit(static_cast<unsigned char>(text[pos + 1]))))) {
        if (text[pos] == '.') saw_dot = true;
        num += text[pos++];
      }
      push(TokenType::kNumber, std::move(num), start);
      continue;
    }
    if (c == '>' || c == '<' || c == '=' || c == '!' || c == '&' ||
        c == '|' || c == '+' || c == '-' || c == '/') {
      // Operator characters only occur inside FILTER expressions, which the
      // parser skips wholesale; '<' starting an IRI and unary +/- before a
      // digit are handled by earlier branches.
      ++pos;
      push(TokenType::kOperator, std::string(1, c), start);
      continue;
    }
    if (c == ':') {
      // Prefixed name with the empty prefix, e.g. `:localName`.
      std::string word = ":";
      ++pos;
      while (pos < n && IsNameChar(text[pos])) {
        if (text[pos] == '.' && (pos + 1 >= n || !IsNameChar(text[pos + 1]))) {
          break;
        }
        word += text[pos++];
      }
      push(TokenType::kPrefixedName, std::move(word), start);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c))) {
      std::string word;
      while (pos < n && IsNameChar(text[pos])) {
        // A trailing '.' acting as the triple terminator must stay separate.
        if (text[pos] == '.' &&
            (pos + 1 >= n || !IsNameChar(text[pos + 1]) || text[pos + 1] == '.')) {
          break;
        }
        word += text[pos++];
      }
      if (pos < n && text[pos] == ':') {
        // Prefixed name: prefix ':' local.
        word += text[pos++];
        while (pos < n && IsNameChar(text[pos])) {
          if (text[pos] == '.' &&
              (pos + 1 >= n || !IsNameChar(text[pos + 1]))) {
            break;
          }
          word += text[pos++];
        }
        push(TokenType::kPrefixedName, std::move(word), start);
        continue;
      }
      if (word == "a") {
        push(TokenType::kA, "a", start);
        continue;
      }
      std::string upper = ToUpper(word);
      if (Keywords().count(upper)) {
        push(TokenType::kKeyword, std::move(upper), start);
        continue;
      }
      if (word == "true" || word == "false") {
        push(TokenType::kString,
             "\"" + word + "\"^^<http://www.w3.org/2001/XMLSchema#boolean>",
             start);
        continue;
      }
      return error("unexpected word '" + word + "'");
    }
    return error(std::string("unexpected character '") + c + "'");
  }
  push(TokenType::kEof, "", pos);
  return tokens;
}

}  // namespace sparql
}  // namespace rdfc
