#include "sparql/writer.h"

namespace rdfc {
namespace sparql {

std::string WriteTerm(rdf::TermId term, const rdf::TermDictionary& dict) {
  switch (dict.kind(term)) {
    case rdf::TermKind::kIri:
      return "<" + dict.lexical(term) + ">";
    case rdf::TermKind::kLiteral:
      return dict.lexical(term);  // Lexical form keeps quotes/datatype.
    case rdf::TermKind::kBlank:
      return "_:" + dict.lexical(term);
    case rdf::TermKind::kVariable:
      return "?" + dict.lexical(term);
  }
  return "?";
}

std::string WriteQuery(const query::BgpQuery& query,
                       const rdf::TermDictionary& dict) {
  std::string out;
  if (query.form() == query::QueryForm::kAsk) {
    out = "ASK WHERE {\n";
  } else {
    out = "SELECT";
    if (query.select_all() || query.distinguished().empty()) {
      out += " *";
    } else {
      for (rdf::TermId var : query.distinguished()) {
        out += " " + WriteTerm(var, dict);
      }
    }
    out += " WHERE {\n";
  }
  for (const rdf::Triple& t : query.patterns()) {
    out += "  " + WriteTerm(t.s, dict) + " " + WriteTerm(t.p, dict) + " " +
           WriteTerm(t.o, dict) + " .\n";
  }
  out += "}\n";
  return out;
}

}  // namespace sparql
}  // namespace rdfc
