#pragma once

#include <string>

#include "query/bgp_query.h"
#include "rdf/dictionary.h"

namespace rdfc {
namespace sparql {

/// Renders a BgpQuery back to executable SPARQL text.  Round-tripping
/// through ParseQuery yields a query with the same pattern set (tested in
/// tests/sparql/writer_test.cc).
std::string WriteQuery(const query::BgpQuery& query,
                       const rdf::TermDictionary& dict);

/// Renders a single term in SPARQL surface syntax.
std::string WriteTerm(rdf::TermId term, const rdf::TermDictionary& dict);

}  // namespace sparql
}  // namespace rdfc
