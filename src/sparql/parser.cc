#include "sparql/parser.h"

#include <atomic>

#include "sparql/lexer.h"

namespace rdfc {
namespace sparql {

namespace {

constexpr char kRdfType[] = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

class Parser {
 public:
  Parser(std::vector<SparqlToken> tokens, rdf::TermDictionary* dict,
         const ParserOptions& options)
      : tokens_(std::move(tokens)), dict_(dict), options_(options),
        prefixes_(options.default_prefixes) {}

  util::Result<ParsedUnionQuery> ParseUnion() {
    RDFC_RETURN_NOT_OK(ParsePrologue());
    ParsedUnionQuery out;
    query::BgpQuery header;  // collects form + projection
    if (PeekKeyword("SELECT")) {
      ++pos_;
      header.set_form(query::QueryForm::kSelect);
      if (PeekKeyword("DISTINCT") || PeekKeyword("REDUCED")) ++pos_;
      if (Peek().type == TokenType::kStar) {
        ++pos_;
        header.set_select_all(true);
      } else {
        bool saw_var = false;
        while (Peek().type == TokenType::kVariable ||
               Peek().type == TokenType::kLParen) {
          if (Peek().type == TokenType::kLParen) {
            // Projection expressions `(expr AS ?v)` are out of scope; skip to
            // the matching ')' keeping the inner variables distinguished.
            RDFC_RETURN_NOT_OK(SkipParenGroup(&header));
            saw_var = true;
            continue;
          }
          header.AddDistinguished(dict_->MakeVariable(Peek().text));
          saw_var = true;
          ++pos_;
        }
        if (!saw_var) return Error("expected projection variables or '*'");
      }
    } else if (PeekKeyword("ASK")) {
      ++pos_;
      header.set_form(query::QueryForm::kAsk);
    } else {
      return Error("expected SELECT or ASK");
    }
    out.form = header.form();
    out.select_all = header.select_all();
    out.distinguished = header.distinguished();
    if (PeekKeyword("WHERE")) ++pos_;

    // `WHERE { { A } UNION { B } ... }` vs a plain `WHERE { A }`.
    if (Peek().type == TokenType::kLBrace &&
        Peek(1).type == TokenType::kLBrace) {
      ++pos_;  // outer '{'
      while (true) {
        query::BgpQuery branch;
        RDFC_RETURN_NOT_OK(ParseGroupGraphPattern(&branch));
        out.branches.push_back(std::move(branch));
        if (PeekKeyword("UNION")) {
          ++pos_;
          if (Peek().type != TokenType::kLBrace) {
            return Error("expected '{' after UNION");
          }
          continue;
        }
        break;
      }
      if (Peek().type != TokenType::kRBrace) {
        return Error("expected '}' closing the UNION group");
      }
      ++pos_;
    } else {
      query::BgpQuery branch;
      RDFC_RETURN_NOT_OK(ParseGroupGraphPattern(&branch));
      out.branches.push_back(std::move(branch));
    }
    // Stamp form/projection onto every branch so each is a complete query.
    for (query::BgpQuery& branch : out.branches) {
      branch.set_form(out.form);
      branch.set_select_all(out.select_all);
      for (rdf::TermId var : out.distinguished) branch.AddDistinguished(var);
    }
    RDFC_RETURN_NOT_OK(SkipTrailingModifiers());
    if (Peek().type != TokenType::kEof) {
      return Error("trailing content after query");
    }
    return out;
  }

  util::Result<query::BgpQuery> Parse() {
    RDFC_ASSIGN_OR_RETURN(ParsedUnionQuery parsed, ParseUnion());
    if (parsed.branches.size() != 1) {
      return util::Status::Unsupported(
          "query has a UNION body; use ParseUnionQuery");
    }
    return std::move(parsed.branches[0]);
  }

 private:
  const SparqlToken& Peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  bool PeekKeyword(std::string_view kw) const {
    return Peek().type == TokenType::kKeyword && Peek().text == kw;
  }

  util::Status Error(const std::string& msg) const {
    return util::Status::ParseError(
        msg + " near offset " + std::to_string(Peek().offset) + " (token: " +
        TokenTypeName(Peek().type) + " '" + Peek().text + "')");
  }

  util::Status ParsePrologue() {
    while (PeekKeyword("PREFIX") || PeekKeyword("BASE")) {
      if (PeekKeyword("BASE")) {
        ++pos_;
        if (Peek().type != TokenType::kIriRef) return Error("expected <iri>");
        base_ = Peek().text;
        ++pos_;
        continue;
      }
      ++pos_;  // PREFIX
      if (Peek().type != TokenType::kPrefixedName) {
        return Error("expected prefix name");
      }
      std::string pname = Peek().text;
      if (pname.empty() || pname.back() != ':') {
        // Prefix declarations use `name:` with an empty local part; the lexer
        // may have swallowed a local part if the declaration was malformed.
        const std::size_t colon = pname.find(':');
        if (colon == std::string::npos) return Error("malformed prefix");
        pname = pname.substr(0, colon + 1);
      }
      pname.pop_back();  // strip ':'
      ++pos_;
      if (Peek().type != TokenType::kIriRef) return Error("expected <iri>");
      prefixes_[pname] = base_ + Peek().text;
      ++pos_;
      if (Peek().type == TokenType::kDot) ++pos_;  // tolerate Turtle-style '.'
    }
    return util::Status::OK();
  }

  util::Status SkipParenGroup(query::BgpQuery* out) {
    RDFC_DCHECK(Peek().type == TokenType::kLParen);
    int depth = 0;
    do {
      if (Peek().type == TokenType::kEof) return Error("unbalanced '('");
      if (Peek().type == TokenType::kLParen) ++depth;
      if (Peek().type == TokenType::kRParen) --depth;
      if (Peek().type == TokenType::kVariable) {
        out->AddDistinguished(dict_->MakeVariable(Peek().text));
      }
      ++pos_;
    } while (depth > 0);
    return util::Status::OK();
  }

  util::Status SkipTrailingModifiers() {
    if (!options_.skip_solution_modifiers) return util::Status::OK();
    while (Peek().type == TokenType::kKeyword &&
           (Peek().text == "LIMIT" || Peek().text == "OFFSET" ||
            Peek().text == "ORDER" || Peek().text == "BY")) {
      ++pos_;
      if (Peek().type == TokenType::kNumber ||
          Peek().type == TokenType::kVariable) {
        ++pos_;
      }
    }
    return util::Status::OK();
  }

  util::Result<rdf::TermId> ParseTerm(bool predicate_position) {
    const SparqlToken& tok = Peek();
    switch (tok.type) {
      case TokenType::kIriRef: {
        ++pos_;
        return dict_->MakeIri(base_ + tok.text);
      }
      case TokenType::kPrefixedName: {
        const std::size_t colon = tok.text.find(':');
        const std::string prefix = tok.text.substr(0, colon);
        auto it = prefixes_.find(prefix);
        if (it == prefixes_.end()) {
          return Error("undeclared prefix '" + prefix + "'");
        }
        ++pos_;
        return dict_->MakeIri(it->second + tok.text.substr(colon + 1));
      }
      case TokenType::kVariable: {
        ++pos_;
        return dict_->MakeVariable(tok.text);
      }
      case TokenType::kBlankNode: {
        ++pos_;
        // Blank nodes in query patterns are existential variables.
        return dict_->MakeVariable("_bn_" + tok.text);
      }
      case TokenType::kA:
        if (!predicate_position) return Error("'a' outside predicate position");
        ++pos_;
        return dict_->MakeIri(kRdfType);
      case TokenType::kString: {
        std::string lexical = tok.text;
        ++pos_;
        if (Peek().type == TokenType::kLangTag) {
          lexical += "@" + Peek().text;
          ++pos_;
        } else if (Peek().type == TokenType::kDoubleCaret) {
          ++pos_;
          RDFC_ASSIGN_OR_RETURN(rdf::TermId dt, ParseTerm(false));
          if (!dict_->IsIri(dt)) return Error("datatype must be an IRI");
          lexical += "^^<" + dict_->lexical(dt) + ">";
        }
        return dict_->MakeLiteral(lexical);
      }
      case TokenType::kNumber: {
        const bool decimal = tok.text.find('.') != std::string::npos;
        ++pos_;
        const char* dt = decimal ? "http://www.w3.org/2001/XMLSchema#decimal"
                                 : "http://www.w3.org/2001/XMLSchema#integer";
        return dict_->MakeLiteral("\"" + tok.text + "\"^^<" + dt + ">");
      }
      default:
        return Error("expected RDF term");
    }
  }

  util::Status SkipFilter() {
    // FILTER ( ... ) — balanced-parenthesis skip; FILTER regex(...) etc. all
    // start with '(' after the function name in our token stream.
    ++pos_;  // FILTER
    // Optional function-style head, e.g. FILTER regex(...): the lexer emits
    // the name as a keyword/prefixed-name/variable-free word which we can
    // simply skip until the '('.
    while (Peek().type != TokenType::kLParen) {
      if (Peek().type == TokenType::kEof) return Error("malformed FILTER");
      ++pos_;
    }
    int depth = 0;
    do {
      if (Peek().type == TokenType::kEof) return Error("unbalanced FILTER");
      if (Peek().type == TokenType::kLParen) ++depth;
      if (Peek().type == TokenType::kRParen) --depth;
      ++pos_;
    } while (depth > 0);
    return util::Status::OK();
  }

  util::Status ParseGroupGraphPattern(query::BgpQuery* out) {
    if (Peek().type != TokenType::kLBrace) return Error("expected '{'");
    ++pos_;
    while (Peek().type != TokenType::kRBrace) {
      if (Peek().type == TokenType::kEof) return Error("unterminated '{'");
      if (PeekKeyword("FILTER")) {
        if (!options_.skip_solution_modifiers) {
          return Error("FILTER unsupported");
        }
        RDFC_RETURN_NOT_OK(SkipFilter());
        if (Peek().type == TokenType::kDot) ++pos_;
        continue;
      }
      if (Peek().type == TokenType::kKeyword &&
          (Peek().text == "OPTIONAL" || Peek().text == "MINUS" ||
           Peek().text == "GRAPH" || Peek().text == "SERVICE" ||
           Peek().text == "UNION")) {
        return util::Status::Unsupported(
            Peek().text + " is outside the BGP fragment this library covers");
      }
      RDFC_RETURN_NOT_OK(ParseTriplesSameSubject(out));
      if (Peek().type == TokenType::kDot) ++pos_;
    }
    ++pos_;  // '}'
    return util::Status::OK();
  }

  util::Status ParseTriplesSameSubject(query::BgpQuery* out) {
    RDFC_ASSIGN_OR_RETURN(rdf::TermId subject, ParseTerm(false));
    while (true) {
      RDFC_ASSIGN_OR_RETURN(rdf::TermId predicate, ParseTerm(true));
      while (true) {
        RDFC_ASSIGN_OR_RETURN(rdf::TermId object, ParseTerm(false));
        out->AddPattern(subject, predicate, object);
        if (Peek().type == TokenType::kComma) {
          ++pos_;
          continue;
        }
        break;
      }
      if (Peek().type == TokenType::kSemicolon) {
        ++pos_;
        // Tolerate dangling ';' before '.' or '}'.
        if (Peek().type == TokenType::kDot ||
            Peek().type == TokenType::kRBrace) {
          break;
        }
        continue;
      }
      break;
    }
    return util::Status::OK();
  }

  std::vector<SparqlToken> tokens_;
  std::size_t pos_ = 0;
  rdf::TermDictionary* dict_;
  ParserOptions options_;
  std::unordered_map<std::string, std::string> prefixes_;
  std::string base_;
};

}  // namespace

util::Result<query::BgpQuery> ParseQuery(std::string_view text,
                                         rdf::TermDictionary* dict,
                                         const ParserOptions& options) {
  RDFC_ASSIGN_OR_RETURN(std::vector<SparqlToken> tokens, Tokenize(text));
  Parser parser(std::move(tokens), dict, options);
  return parser.Parse();
}

util::Result<ParsedUnionQuery> ParseUnionQuery(std::string_view text,
                                               rdf::TermDictionary* dict,
                                               const ParserOptions& options) {
  RDFC_ASSIGN_OR_RETURN(std::vector<SparqlToken> tokens, Tokenize(text));
  Parser parser(std::move(tokens), dict, options);
  return parser.ParseUnion();
}

}  // namespace sparql
}  // namespace rdfc
