#pragma once

#include <vector>

#include "index/mv_index.h"
#include "util/stats.h"

namespace rdfc {
namespace index {

/// Deep structural statistics of an mv-index, beyond RadixStats: where the
/// sharing happens (depth/fan-out profiles) and how much of the serialised
/// corpus the tree actually stores (the compression the paper's Figure 1
/// illustrates).
struct DetailedStats {
  RadixStats basic;
  /// Vertices at each depth (root = depth 0).
  std::vector<std::size_t> nodes_per_depth;
  /// Histogram of per-vertex fan-out; index = number of outgoing edges,
  /// capped at 16 (last bucket aggregates the tail).
  std::vector<std::size_t> fanout_histogram;
  /// Distribution of edge-label lengths in tokens.
  util::StreamingStats label_length;
  /// Σ over live entries of their serialised-form length.  The ratio
  /// against basic.total_label_tokens is the prefix-sharing compression.
  std::size_t total_serialised_tokens = 0;

  double compression_ratio() const {
    return basic.total_label_tokens == 0
               ? 1.0
               : static_cast<double>(total_serialised_tokens) /
                     static_cast<double>(basic.total_label_tokens);
  }
};

DetailedStats ComputeDetailedStats(const MvIndex& index);

}  // namespace index
}  // namespace rdfc
