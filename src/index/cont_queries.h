#pragma once

#include "containment/pipeline.h"
#include "index/mv_index.h"

namespace rdfc {
namespace index {

/// Algorithm 3: finds every indexed query containing the probe by walking
/// the Radix tree while advancing the resumable Algorithm-2 matcher along
/// edge labels.  State is copied at branch vertices (the paper's CopyOf) and
/// a failing edge prunes the entire subtree below it.
///
/// Per Theorem 4.2 the walk is started once per witness class of the probe;
/// the per-entry verdicts are then decided by the shared Phase-2 logic
/// (PTime certainty for ND-degree-1 probes, NP verification otherwise).
ProbeResult ContQueries(const MvIndex& index,
                        const containment::PreparedProbe& probe,
                        const ProbeOptions& options);

}  // namespace index
}  // namespace rdfc
