#include "index/probe_walk.h"

namespace rdfc {
namespace index {
namespace internal {

using containment::BindAnchor;
using containment::FGraphView;
using containment::MatchState;
using containment::Step;
using containment::StepResult;

void CollectCandidateTokens(const FGraphView& view,
                            const rdf::TermDictionary& dict,
                            const MatchState& st,
                            std::vector<query::Token>* out) {
  out->push_back(query::Token::Separator());
  if (st.v == MatchState::kNoVertex) {
    // Awaiting a component anchor (right after a separator).
    const auto m = static_cast<std::uint32_t>(st.sigma.size());
    // CanonicalVariableIfKnown keeps the walk strictly read-only: if ?x(m+1)
    // was never interned, no stored query has that many variables and no
    // edge can carry it.
    const rdf::TermId fresh_anchor = dict.CanonicalVariableIfKnown(m + 1);
    if (fresh_anchor != rdf::kNullTerm) {
      out->push_back(query::Token::Anchor(fresh_anchor));
    }
    for (const auto& [var, cls] : st.sigma) {
      (void)cls;
      out->push_back(query::Token::Anchor(var));
    }
    for (std::uint32_t cls = 0; cls < view.num_vertices(); ++cls) {
      for (rdf::TermId c : view.ConstantsIn(cls)) {
        out->push_back(query::Token::Anchor(c));
      }
    }
    return;
  }
  out->push_back(query::Token::Open());
  if (!st.path_stack.empty()) out->push_back(query::Token::Close());
  // Root anchor (only the root can start with a stream-initial anchor;
  // one extra miss elsewhere is harmless).
  const auto m = static_cast<std::uint32_t>(st.sigma.size());
  const rdf::TermId fresh = dict.CanonicalVariableIfKnown(m + 1);
  if (st.sigma.empty()) {
    if (fresh != rdf::kNullTerm) {
      out->push_back(query::Token::Anchor(fresh));
    }
    for (rdf::TermId c : view.ConstantsIn(st.v)) {
      out->push_back(query::Token::Anchor(c));
    }
  }
  for (const FGraphView::AdjEdge& edge : view.Adjacency(st.v)) {
    if (fresh != rdf::kNullTerm) {
      out->push_back(query::Token::Pair(edge.pred, fresh, edge.inverse));
    }
    for (const auto& [var, cls] : st.sigma) {
      if (cls == edge.target) {
        out->push_back(query::Token::Pair(edge.pred, var, edge.inverse));
      }
    }
    for (rdf::TermId c : view.ConstantsIn(edge.target)) {
      out->push_back(query::Token::Pair(edge.pred, c, edge.inverse));
    }
  }
}

void AdvanceLabel(const FGraphView& view, const rdf::TermDictionary& dict,
                  const query::Token* label, std::size_t len, std::size_t from,
                  MatchState state, std::vector<MatchState>* out,
                  std::size_t* states_explored) {
  for (std::size_t i = from; i < len; ++i) {
    ++*states_explored;
    const StepResult r = Step(view, dict, label[i], &state);
    if (r == StepResult::kFail) return;
    if (r == StepResult::kNeedsFork) {
      for (std::uint32_t cls = 0; cls < view.num_vertices(); ++cls) {
        MatchState forked = state;
        if (BindAnchor(view, dict, label[i], cls, &forked)) {
          AdvanceLabel(view, dict, label, len, i + 1, std::move(forked), out,
                       states_explored);
        }
      }
      return;
    }
  }
  out->push_back(std::move(state));
}

}  // namespace internal
}  // namespace index
}  // namespace rdfc
