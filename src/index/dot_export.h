#pragma once

#include <string>

#include "index/mv_index.h"

namespace rdfc {
namespace index {

/// Renders the mv-index Radix tree as Graphviz DOT (the paper's Figure 1
/// visual).  Query vertices are drawn as double circles annotated with their
/// stored ids; edge labels show the token sequence (IRIs shortened to their
/// final path segment, `⁻¹` marking inverse pairs).  Intended for debugging
/// and documentation of small indexes — the output grows with the tree.
std::string ExportDot(const MvIndex& index, std::size_t max_label_tokens = 6);

}  // namespace index
}  // namespace rdfc
