#include "index/stats.h"

#include <functional>

namespace rdfc {
namespace index {

namespace {
constexpr std::size_t kFanoutCap = 16;
}  // namespace

DetailedStats ComputeDetailedStats(const MvIndex& index) {
  DetailedStats stats;
  stats.basic = index.ComputeStats();
  stats.fanout_histogram.assign(kFanoutCap + 1, 0);

  std::function<void(const RadixNode&, std::size_t)> walk =
      [&](const RadixNode& node, std::size_t depth) {
        if (stats.nodes_per_depth.size() <= depth) {
          stats.nodes_per_depth.resize(depth + 1, 0);
        }
        ++stats.nodes_per_depth[depth];
        const std::size_t fanout = std::min(node.edges.size(), kFanoutCap);
        ++stats.fanout_histogram[fanout];
        for (const auto& [first, edge] : node.edges) {
          (void)first;
          stats.label_length.Add(static_cast<double>(edge.label.size()));
          walk(*edge.child, depth + 1);
        }
      };
  walk(index.root(), 0);

  for (std::uint32_t id = 0; id < index.num_entries(); ++id) {
    if (!index.alive(id)) continue;
    stats.total_serialised_tokens += index.entry(id).tokens.size();
  }
  return stats;
}

}  // namespace index
}  // namespace rdfc
