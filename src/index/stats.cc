#include "index/stats.h"

#include <algorithm>

namespace rdfc {
namespace index {

namespace {
constexpr std::size_t kFanoutCap = 16;
}  // namespace

DetailedStats ComputeDetailedStats(const MvIndex& index) {
  DetailedStats stats;
  stats.basic = index.ComputeStats();
  stats.fanout_histogram.assign(kFanoutCap + 1, 0);

  // Explicit stack: depth here is exactly what a chain-shaped workload
  // maximises, so the traversal must not recurse.
  struct Item {
    const RadixNode* node;
    std::size_t depth;
  };
  std::vector<Item> pending = {{&index.root(), 0}};
  while (!pending.empty()) {
    const Item item = pending.back();
    pending.pop_back();
    if (stats.nodes_per_depth.size() <= item.depth) {
      stats.nodes_per_depth.resize(item.depth + 1, 0);
    }
    ++stats.nodes_per_depth[item.depth];
    const std::size_t fanout = std::min(item.node->edges.size(), kFanoutCap);
    ++stats.fanout_histogram[fanout];
    for (const auto& [first, edge] : item.node->edges) {
      (void)first;
      stats.label_length.Add(static_cast<double>(edge.label.size()));
      pending.push_back({edge.child.get(), item.depth + 1});
    }
  }

  for (std::uint32_t id = 0; id < index.num_entries(); ++id) {
    if (!index.alive(id)) continue;
    stats.total_serialised_tokens += index.entry(id).tokens.size();
  }
  return stats;
}

}  // namespace index
}  // namespace rdfc
