#include "index/persistence.h"

#include <cstdio>
#include <cstring>
#include <vector>

namespace rdfc {
namespace index {

namespace {

constexpr char kMagic[8] = {'R', 'D', 'F', 'C', 'I', 'X', '0', '1'};

/// FNV-1a over the payload, to catch truncation/corruption on load.
class Checksum {
 public:
  void Update(const void* data, std::size_t n) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ ^= bytes[i];
      hash_ *= 0x100000001B3ull;
    }
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xCBF29CE484222325ull;
};

class Writer {
 public:
  explicit Writer(std::FILE* file) : file_(file) {}

  void U8(std::uint8_t v) { Raw(&v, 1); }
  void U32(std::uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(std::uint64_t v) { Raw(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U32(static_cast<std::uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  void Raw(const void* data, std::size_t n) {
    checksum_.Update(data, n);
    ok_ = ok_ && std::fwrite(data, 1, n, file_) == n;
  }
  /// Writes the checksum itself (not folded into the running hash).
  void Finish() {
    const std::uint64_t sum = checksum_.value();
    ok_ = ok_ && std::fwrite(&sum, 1, sizeof(sum), file_) == sizeof(sum);
  }
  bool ok() const { return ok_; }

 private:
  std::FILE* file_;
  Checksum checksum_;
  bool ok_ = true;
};

class Reader {
 public:
  explicit Reader(std::FILE* file) : file_(file) {}

  bool U8(std::uint8_t* v) { return Raw(v, 1); }
  bool U32(std::uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(std::uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool Str(std::string* s) {
    std::uint32_t n = 0;
    if (!U32(&n)) return false;
    if (n > (1u << 28)) return false;  // sanity cap: 256 MiB per string
    s->resize(n);
    return n == 0 || Raw(s->data(), n);
  }
  bool Raw(void* data, std::size_t n) {
    if (std::fread(data, 1, n, file_) != n) return false;
    checksum_.Update(data, n);
    return true;
  }
  bool VerifyChecksum() {
    const std::uint64_t expected = checksum_.value();
    std::uint64_t stored = 0;
    if (std::fread(&stored, 1, sizeof(stored), file_) != sizeof(stored)) {
      return false;
    }
    return stored == expected;
  }

 private:
  std::FILE* file_;
  Checksum checksum_;
};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

util::Status SaveIndex(const MvIndex& index, const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return util::Status::InvalidArgument("cannot open for writing: " + path);
  }
  const rdf::TermDictionary& dict = index.dict();
  Writer w(file.get());
  w.Raw(kMagic, sizeof(kMagic));

  // Dictionary in id order (slot 0 is the reserved null term; skipped).
  w.U32(static_cast<std::uint32_t>(dict.size()));
  for (rdf::TermId id = 1; id < dict.size(); ++id) {
    w.U8(static_cast<std::uint8_t>(dict.kind(id)));
    w.Str(dict.lexical(id));
  }

  // Live entries: canonical patterns + external ids.  The canonical form is
  // stable across reloads because re-preparation is deterministic.
  std::uint32_t live = 0;
  for (std::uint32_t id = 0; id < index.num_entries(); ++id) {
    live += index.alive(id) ? 1 : 0;
  }
  w.U32(live);
  for (std::uint32_t id = 0; id < index.num_entries(); ++id) {
    if (!index.alive(id)) continue;
    const containment::PreparedStored& stored = index.entry(id);
    w.U32(static_cast<std::uint32_t>(stored.canonical.size()));
    for (const rdf::Triple& t : stored.canonical.patterns()) {
      w.U32(t.s);
      w.U32(t.p);
      w.U32(t.o);
    }
    const auto& externals = index.external_ids(id);
    w.U32(static_cast<std::uint32_t>(externals.size()));
    for (std::uint64_t ext : externals) w.U64(ext);
  }
  w.Finish();
  if (!w.ok()) return util::Status::Internal("write failed: " + path);
  return util::Status::OK();
}

util::Result<std::unique_ptr<MvIndex>> LoadIndex(const std::string& path,
                                                 rdf::TermDictionary* dict) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return util::Status::NotFound("cannot open for reading: " + path);
  }
  Reader r(file.get());
  char magic[8];
  if (!r.Raw(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return util::Status::ParseError("bad magic in " + path);
  }

  std::uint32_t dict_size = 0;
  if (!r.U32(&dict_size)) return util::Status::ParseError("truncated header");
  // Old id -> new id.  With a fresh dictionary the mapping is the identity,
  // but re-interning keeps loads into pre-populated dictionaries correct.
  std::vector<rdf::TermId> remap(dict_size, rdf::kNullTerm);
  for (std::uint32_t id = 1; id < dict_size; ++id) {
    std::uint8_t kind = 0;
    std::string lexical;
    if (!r.U8(&kind) || !r.Str(&lexical) || kind > 3) {
      return util::Status::ParseError("truncated dictionary entry");
    }
    remap[id] = dict->Intern(static_cast<rdf::TermKind>(kind), lexical);
  }

  auto index = std::make_unique<MvIndex>(dict);
  std::uint32_t num_entries = 0;
  if (!r.U32(&num_entries)) return util::Status::ParseError("truncated body");
  for (std::uint32_t e = 0; e < num_entries; ++e) {
    std::uint32_t num_triples = 0;
    if (!r.U32(&num_triples)) return util::Status::ParseError("truncated entry");
    query::BgpQuery q;
    q.set_form(query::QueryForm::kAsk);
    for (std::uint32_t i = 0; i < num_triples; ++i) {
      std::uint32_t s = 0, p = 0, o = 0;
      if (!r.U32(&s) || !r.U32(&p) || !r.U32(&o)) {
        return util::Status::ParseError("truncated triple");
      }
      if (s >= dict_size || p >= dict_size || o >= dict_size) {
        return util::Status::ParseError("term id out of range");
      }
      q.AddPattern(remap[s], remap[p], remap[o]);
    }
    std::uint32_t num_externals = 0;
    if (!r.U32(&num_externals)) {
      return util::Status::ParseError("truncated externals");
    }
    for (std::uint32_t i = 0; i < num_externals; ++i) {
      std::uint64_t ext = 0;
      if (!r.U64(&ext)) return util::Status::ParseError("truncated external");
      RDFC_ASSIGN_OR_RETURN(MvIndex::InsertOutcome outcome,
                            index->Insert(q, ext));
      (void)outcome;
    }
  }
  if (!r.VerifyChecksum()) {
    return util::Status::ParseError("checksum mismatch in " + path);
  }
  return index;
}

}  // namespace index
}  // namespace rdfc
