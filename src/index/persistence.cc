#include "index/persistence.h"

#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "index/validate.h"
#include "util/failpoint.h"

namespace rdfc {
namespace index {

namespace {

constexpr char kMagic[8] = {'R', 'D', 'F', 'C', 'I', 'X', '0', '1'};
constexpr char kFrozenMagic[8] = {'R', 'D', 'F', 'C', 'F', 'Z', '0', '1'};
constexpr char kTieredMagic[8] = {'R', 'D', 'F', 'C', 'T', 'I', '0', '2'};

/// Manifest shard counts beyond this are implausible (mirrors
/// service::IndexSnapshot::kMaxShards without a service-layer include).
constexpr std::uint32_t kMaxTieredShards = 64;

std::string TieredBasePath(const std::string& path, std::size_t shard,
                           std::uint64_t generation) {
  return path + ".base." + std::to_string(shard) + "." +
         std::to_string(generation);
}

/// FNV-1a over the payload, to catch truncation/corruption on load.
class Checksum {
 public:
  void Update(const void* data, std::size_t n) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ ^= bytes[i];
      hash_ *= 0x100000001B3ull;
    }
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xCBF29CE484222325ull;
};

class Writer {
 public:
  explicit Writer(std::FILE* file) : file_(file) {}

  void U8(std::uint8_t v) { Raw(&v, 1); }
  void U32(std::uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(std::uint64_t v) { Raw(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U32(static_cast<std::uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  void Raw(const void* data, std::size_t n) {
    checksum_.Update(data, n);
    ok_ = ok_ && std::fwrite(data, 1, n, file_) == n;
  }
  /// Writes the checksum itself (not folded into the running hash).
  void Finish() {
    const std::uint64_t sum = checksum_.value();
    ok_ = ok_ && std::fwrite(&sum, 1, sizeof(sum), file_) == sizeof(sum);
  }
  bool ok() const { return ok_; }

 private:
  std::FILE* file_;
  Checksum checksum_;
  bool ok_ = true;
};

class Reader {
 public:
  explicit Reader(std::FILE* file) : file_(file) {
    // Learn the file size up front: length-prefixed fields from a torn or
    // corrupt blob are bounded by `remaining()` before any allocation, so a
    // truncated file can never drive a multi-gigabyte resize.
    if (std::fseek(file_, 0, SEEK_END) == 0) {
      const long size = std::ftell(file_);
      remaining_ = size > 0 ? static_cast<std::uint64_t>(size) : 0;
    }
    std::rewind(file_);
  }

  bool U8(std::uint8_t* v) { return Raw(v, 1); }
  bool U32(std::uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(std::uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool Str(std::string* s) {
    std::uint32_t n = 0;
    if (!U32(&n)) return false;
    if (n > remaining_) return false;
    s->resize(n);
    return n == 0 || Raw(s->data(), n);
  }
  bool Raw(void* data, std::size_t n) {
    if (n > remaining_) return false;
    if (std::fread(data, 1, n, file_) != n) return false;
    remaining_ -= n;
    checksum_.Update(data, n);
    return true;
  }
  bool VerifyChecksum() {
    const std::uint64_t expected = checksum_.value();
    std::uint64_t stored = 0;
    if (std::fread(&stored, 1, sizeof(stored), file_) != sizeof(stored)) {
      return false;
    }
    return stored == expected;
  }

  /// Bytes left in the file — the hard ceiling for any count or length a
  /// well-formed remainder could still encode.
  std::uint64_t remaining() const { return remaining_; }

 private:
  std::FILE* file_;
  Checksum checksum_;
  std::uint64_t remaining_ = 0;
};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

/// Crash-safe writer: streams into `path + ".tmp"`, and Commit() makes the
/// switch durable — flush, fsync, then an atomic rename over the target.  A
/// failure (or a real crash) at any point leaves whatever was previously at
/// `path` byte-for-byte intact; an uncommitted temp file is removed by the
/// destructor.  Failpoint sites cover each I/O stage so rdfc_fuzz can
/// exercise every abort path deterministically.
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(std::string path)
      : path_(std::move(path)), tmp_path_(path_ + ".tmp") {}
  ~AtomicFileWriter() {
    if (file_ != nullptr) std::fclose(file_);
    if (opened_ && !committed_) std::remove(tmp_path_.c_str());
  }

  [[nodiscard]] util::Status Open() {
    if (RDFC_FAILPOINT("persistence.open")) {
      return util::Status::Internal("failpoint persistence.open");
    }
    file_ = std::fopen(tmp_path_.c_str(), "wb");
    if (file_ == nullptr) {
      return util::Status::InvalidArgument("cannot open for writing: " +
                                           tmp_path_);
    }
    opened_ = true;
    return util::Status::OK();
  }

  std::FILE* file() { return file_; }

  [[nodiscard]] util::Status Commit() {
    if (RDFC_FAILPOINT("persistence.write")) {
      return util::Status::Internal("failpoint persistence.write");
    }
    if (std::fflush(file_) != 0) {
      return util::Status::Internal("flush failed: " + tmp_path_);
    }
#if defined(__unix__) || defined(__APPLE__)
    if (RDFC_FAILPOINT("persistence.fsync") || fsync(fileno(file_)) != 0) {
      return util::Status::Internal("fsync failed: " + tmp_path_);
    }
#endif
    if (std::fclose(file_) != 0) {
      file_ = nullptr;
      return util::Status::Internal("close failed: " + tmp_path_);
    }
    file_ = nullptr;
    if (RDFC_FAILPOINT("persistence.crash")) {
      // Simulated crash between durability and the rename: the temp file is
      // left behind exactly as a killed process would leave it, and the
      // previous snapshot at `path` must remain loadable and checksum-clean.
      opened_ = false;
      return util::Status::Internal("failpoint persistence.crash");
    }
    if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
      return util::Status::Internal("rename failed: " + path_);
    }
    committed_ = true;
#if defined(__unix__) || defined(__APPLE__)
    // Best-effort directory fsync so the rename itself survives power loss.
    const std::size_t slash = path_.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path_.substr(0, slash);
    const int dir_fd = open(dir.c_str(), O_RDONLY);
    if (dir_fd >= 0) {
      (void)fsync(dir_fd);
      (void)close(dir_fd);
    }
#endif
    return util::Status::OK();
  }

 private:
  std::string path_;
  std::string tmp_path_;
  std::FILE* file_ = nullptr;
  bool opened_ = false;
  bool committed_ = false;
};

/// Dictionary section, shared by every format: term count, then each term in
/// id order (slot 0 is the reserved null term; skipped).
void WriteDictionary(Writer* w, const rdf::TermDictionary& dict) {
  w->U32(static_cast<std::uint32_t>(dict.size()));
  for (rdf::TermId id = 1; id < dict.size(); ++id) {
    w->U8(static_cast<std::uint8_t>(dict.kind(id)));
    w->Str(dict.lexical(id));
  }
}

/// Reads a dictionary section, re-interning into `dict`.  On success `remap`
/// maps old id -> new id and its size() is the on-disk dictionary size (the
/// range bound for every term id that follows).  With a fresh dictionary the
/// mapping is the identity, but re-interning keeps loads into pre-populated
/// dictionaries correct.
util::Status ReadDictionary(Reader* r, rdf::TermDictionary* dict,
                            std::vector<rdf::TermId>* remap) {
  std::uint32_t dict_size = 0;
  if (!r->U32(&dict_size)) return util::Status::ParseError("truncated header");
  // Every dictionary entry takes at least 5 bytes (kind + length prefix), so
  // a count the remaining file could not hold is corruption — reject before
  // sizing the remap table by it.
  if (dict_size > 1 &&
      (static_cast<std::uint64_t>(dict_size) - 1) * 5 > r->remaining()) {
    return util::Status::ParseError("implausible dictionary size");
  }
  remap->assign(dict_size, rdf::kNullTerm);
  for (std::uint32_t id = 1; id < dict_size; ++id) {
    std::uint8_t kind = 0;
    std::string lexical;
    if (!r->U8(&kind) || !r->Str(&lexical) || kind > 3) {
      return util::Status::ParseError("truncated dictionary entry");
    }
    (*remap)[id] = dict->Intern(static_cast<rdf::TermKind>(kind), lexical);
  }
  return util::Status::OK();
}

/// One entry body: the canonical patterns followed by the external ids (the
/// SaveIndex / tiered-manifest journal encoding).
void WriteEntryBody(Writer* w, const containment::PreparedStored& stored,
                    const std::vector<std::uint64_t>& externals) {
  w->U32(static_cast<std::uint32_t>(stored.canonical.size()));
  for (const rdf::Triple& t : stored.canonical.patterns()) {
    w->U32(t.s);
    w->U32(t.p);
    w->U32(t.o);
  }
  w->U32(static_cast<std::uint32_t>(externals.size()));
  for (std::uint64_t ext : externals) w->U64(ext);
}

/// Reads one entry's canonical patterns (remapped) into `q`.
util::Status ReadEntryQuery(Reader* r, const std::vector<rdf::TermId>& remap,
                            query::BgpQuery* q) {
  std::uint32_t num_triples = 0;
  if (!r->U32(&num_triples)) return util::Status::ParseError("truncated entry");
  q->set_form(query::QueryForm::kAsk);
  const std::uint32_t dict_size = static_cast<std::uint32_t>(remap.size());
  for (std::uint32_t i = 0; i < num_triples; ++i) {
    std::uint32_t s = 0, p = 0, o = 0;
    if (!r->U32(&s) || !r->U32(&p) || !r->U32(&o)) {
      return util::Status::ParseError("truncated triple");
    }
    if (s >= dict_size || p >= dict_size || o >= dict_size) {
      return util::Status::ParseError("term id out of range");
    }
    q->AddPattern(remap[s], remap[p], remap[o]);
  }
  return util::Status::OK();
}

}  // namespace

util::Status SaveIndex(const MvIndex& index, const std::string& path) {
  AtomicFileWriter out(path);
  RDFC_RETURN_NOT_OK(out.Open());
  Writer w(out.file());
  w.Raw(kMagic, sizeof(kMagic));
  WriteDictionary(&w, index.dict());

  // Live entries: canonical patterns + external ids.  The canonical form is
  // stable across reloads because re-preparation is deterministic.
  std::uint32_t live = 0;
  for (std::uint32_t id = 0; id < index.num_entries(); ++id) {
    live += index.alive(id) ? 1 : 0;
  }
  w.U32(live);
  for (std::uint32_t id = 0; id < index.num_entries(); ++id) {
    if (!index.alive(id)) continue;
    WriteEntryBody(&w, index.entry(id), index.external_ids(id));
  }
  w.Finish();
  if (!w.ok()) return util::Status::Internal("write failed: " + path);
  return out.Commit();
}

util::Result<std::unique_ptr<MvIndex>> LoadIndex(const std::string& path,
                                                 rdf::TermDictionary* dict) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return util::Status::NotFound("cannot open for reading: " + path);
  }
  Reader r(file.get());
  char magic[8];
  if (!r.Raw(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return util::Status::ParseError("bad magic in " + path);
  }

  std::vector<rdf::TermId> remap;
  RDFC_RETURN_NOT_OK(ReadDictionary(&r, dict, &remap));

  auto index = std::make_unique<MvIndex>(dict);
  std::uint32_t num_entries = 0;
  if (!r.U32(&num_entries)) return util::Status::ParseError("truncated body");
  for (std::uint32_t e = 0; e < num_entries; ++e) {
    query::BgpQuery q;
    RDFC_RETURN_NOT_OK(ReadEntryQuery(&r, remap, &q));
    std::uint32_t num_externals = 0;
    if (!r.U32(&num_externals)) {
      return util::Status::ParseError("truncated externals");
    }
    for (std::uint32_t i = 0; i < num_externals; ++i) {
      std::uint64_t ext = 0;
      if (!r.U64(&ext)) return util::Status::ParseError("truncated external");
      RDFC_ASSIGN_OR_RETURN(MvIndex::InsertOutcome outcome,
                            index->Insert(q, ext));
      (void)outcome;
    }
  }
  if (!r.VerifyChecksum()) {
    return util::Status::ParseError("checksum mismatch in " + path);
  }
  return index;
}

namespace {

/// On-disk token: 12 bytes with the two padding bytes of query::Token pinned
/// to zero, so file contents never depend on what the compiler left in the
/// in-memory padding (the checksum would otherwise be non-deterministic).
constexpr std::size_t kPackedTokenBytes = 12;

void AppendU32(std::vector<unsigned char>* blob, std::uint32_t v) {
  const auto* b = reinterpret_cast<const unsigned char*>(&v);
  blob->insert(blob->end(), b, b + sizeof(v));
}

void AppendToken(std::vector<unsigned char>* blob, const query::Token& t) {
  unsigned char b[kPackedTokenBytes] = {0};
  b[0] = static_cast<unsigned char>(t.type);
  b[1] = t.inverse ? 1 : 0;
  std::memcpy(b + 4, &t.pred, sizeof(t.pred));
  std::memcpy(b + 8, &t.term, sizeof(t.term));
  blob->insert(blob->end(), b, b + kPackedTokenBytes);
}

}  // namespace

util::Status SaveFrozenIndex(const FrozenMvIndex& frozen,
                             const std::string& path) {
  AtomicFileWriter out(path);
  RDFC_RETURN_NOT_OK(out.Open());
  Writer w(out.file());
  w.Raw(kFrozenMagic, sizeof(kFrozenMagic));
  WriteDictionary(&w, frozen.dict());

  // The tree structure as one relocatable blob: count header + the five flat
  // arrays back to back, every cross-reference an array index.
  const auto& nodes = frozen.nodes();
  const auto& first = frozen.edge_first_tokens();
  const auto& offsets = frozen.edge_label_offsets();
  const auto& lens = frozen.edge_label_lens();
  const auto& pool = frozen.label_pool();
  const auto& stored = frozen.stored_ids();
  std::vector<unsigned char> blob;
  blob.reserve(16 + nodes.size() * sizeof(FrozenMvIndex::Node) +
               (first.size() + pool.size()) * kPackedTokenBytes +
               (offsets.size() + lens.size() + stored.size()) *
                   sizeof(std::uint32_t));
  AppendU32(&blob, static_cast<std::uint32_t>(nodes.size()));
  AppendU32(&blob, static_cast<std::uint32_t>(first.size()));
  AppendU32(&blob, static_cast<std::uint32_t>(pool.size()));
  AppendU32(&blob, static_cast<std::uint32_t>(stored.size()));
  const auto* node_bytes = reinterpret_cast<const unsigned char*>(nodes.data());
  blob.insert(blob.end(), node_bytes,
              node_bytes + nodes.size() * sizeof(FrozenMvIndex::Node));
  for (const query::Token& t : first) AppendToken(&blob, t);
  const auto* off_bytes =
      reinterpret_cast<const unsigned char*>(offsets.data());
  blob.insert(blob.end(), off_bytes,
              off_bytes + offsets.size() * sizeof(std::uint32_t));
  const auto* len_bytes = reinterpret_cast<const unsigned char*>(lens.data());
  blob.insert(blob.end(), len_bytes,
              len_bytes + lens.size() * sizeof(std::uint32_t));
  for (const query::Token& t : pool) AppendToken(&blob, t);
  const auto* sid_bytes =
      reinterpret_cast<const unsigned char*>(stored.data());
  blob.insert(blob.end(), sid_bytes,
              sid_bytes + stored.size() * sizeof(std::uint32_t));
  w.U64(blob.size());
  w.Raw(blob.data(), blob.size());

  // Entry table with its slot positions (dead slots persist as empty), so
  // the stored ids baked into the blob stay valid.
  w.U32(static_cast<std::uint32_t>(frozen.num_entries()));
  for (std::uint32_t id = 0; id < frozen.num_entries(); ++id) {
    if (!frozen.alive(id)) {
      w.U8(0);
      continue;
    }
    w.U8(1);
    WriteEntryBody(&w, frozen.entry(id), frozen.external_ids(id));
  }
  w.Finish();
  if (!w.ok()) return util::Status::Internal("write failed: " + path);
  return out.Commit();
}

util::Result<std::unique_ptr<FrozenMvIndex>> LoadFrozenIndex(
    const std::string& path, rdf::TermDictionary* dict) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return util::Status::NotFound("cannot open for reading: " + path);
  }
  Reader r(file.get());
  char magic[8];
  if (!r.Raw(magic, sizeof(magic)) ||
      std::memcmp(magic, kFrozenMagic, sizeof(kFrozenMagic)) != 0) {
    return util::Status::ParseError("bad magic in " + path);
  }

  std::vector<rdf::TermId> remap;
  RDFC_RETURN_NOT_OK(ReadDictionary(&r, dict, &remap));
  const std::uint32_t dict_size = static_cast<std::uint32_t>(remap.size());

  // The structure blob: one read, then slice — no per-node rebuild.
  std::uint64_t blob_size = 0;
  if (!r.U64(&blob_size) || blob_size > r.remaining()) {
    return util::Status::ParseError("truncated or implausible blob header");
  }
  std::vector<unsigned char> blob(blob_size);
  if (blob_size > 0 && !r.Raw(blob.data(), blob_size)) {
    return util::Status::ParseError("truncated blob");
  }
  std::uint32_t counts[4] = {0, 0, 0, 0};  // nodes, edges, labels, stored ids
  if (blob_size < sizeof(counts)) {
    return util::Status::ParseError("blob too small for its header");
  }
  std::memcpy(counts, blob.data(), sizeof(counts));
  const std::uint64_t num_nodes = counts[0];
  const std::uint64_t num_edges = counts[1];
  const std::uint64_t num_labels = counts[2];
  const std::uint64_t num_stored = counts[3];
  const std::uint64_t expected =
      sizeof(counts) + num_nodes * sizeof(FrozenMvIndex::Node) +
      (num_edges + num_labels) * kPackedTokenBytes +
      (2 * num_edges + num_stored) * sizeof(std::uint32_t);
  if (expected != blob_size) {
    return util::Status::ParseError("blob size does not match its counts");
  }

  std::unique_ptr<FrozenMvIndex> out(
      new FrozenMvIndex(dict));  // NOLINT(raw-new): private shell ctor, friend-only
  const unsigned char* cur = blob.data() + sizeof(counts);
  out->nodes_.resize(num_nodes);
  std::memcpy(out->nodes_.data(), cur, num_nodes * sizeof(FrozenMvIndex::Node));
  cur += num_nodes * sizeof(FrozenMvIndex::Node);
  auto read_tokens = [&cur, dict_size, &remap](
                         std::uint64_t n,
                         std::vector<query::Token>* tokens) -> bool {
    tokens->resize(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      query::Token& t = (*tokens)[i];
      if (cur[0] > static_cast<unsigned char>(query::TokenType::kSeparator) ||
          cur[1] > 1) {
        return false;
      }
      t.type = static_cast<query::TokenType>(cur[0]);
      t.inverse = cur[1] != 0;
      std::memcpy(&t.pred, cur + 4, sizeof(t.pred));
      std::memcpy(&t.term, cur + 8, sizeof(t.term));
      if (t.pred >= dict_size || t.term >= dict_size) return false;
      t.pred = remap[t.pred];
      t.term = remap[t.term];
      cur += kPackedTokenBytes;
    }
    return true;
  };
  if (!read_tokens(num_edges, &out->edge_first_)) {
    return util::Status::ParseError("malformed dispatch token");
  }
  out->edge_label_offset_.resize(num_edges);
  std::memcpy(out->edge_label_offset_.data(), cur,
              num_edges * sizeof(std::uint32_t));
  cur += num_edges * sizeof(std::uint32_t);
  out->edge_label_len_.resize(num_edges);
  std::memcpy(out->edge_label_len_.data(), cur,
              num_edges * sizeof(std::uint32_t));
  cur += num_edges * sizeof(std::uint32_t);
  if (!read_tokens(num_labels, &out->labels_)) {
    return util::Status::ParseError("malformed label token");
  }
  out->stored_ids_.resize(num_stored);
  std::memcpy(out->stored_ids_.data(), cur,
              num_stored * sizeof(std::uint32_t));

  // Entry table: dead slots stay empty so the blob's stored ids keep
  // pointing at the right rows.  Re-preparation is deterministic and also
  // re-registers the canonical variables CollectCandidateTokens looks up.
  std::uint32_t num_entries = 0;
  // Each entry slot needs at least its one-byte alive flag, so the
  // remaining file length bounds any honest count.
  if (!r.U32(&num_entries) || num_entries > r.remaining()) {
    return util::Status::ParseError("truncated or implausible entry count");
  }
  out->entries_.resize(num_entries);
  for (std::uint32_t id = 0; id < num_entries; ++id) {
    std::uint8_t alive = 0;
    if (!r.U8(&alive) || alive > 1) {
      return util::Status::ParseError("truncated entry flag");
    }
    if (alive == 0) continue;
    query::BgpQuery q;
    RDFC_RETURN_NOT_OK(ReadEntryQuery(&r, remap, &q));
    RDFC_ASSIGN_OR_RETURN(containment::PreparedStored prepared,
                          containment::PrepareStored(q, dict));
    if (prepared.tokens.empty()) out->skeleton_free_.push_back(id);
    out->entries_[id].prepared = std::move(prepared);
    out->entries_[id].alive = true;
    ++out->num_live_;
    std::uint32_t num_externals = 0;
    if (!r.U32(&num_externals)) {
      return util::Status::ParseError("truncated externals");
    }
    out->entries_[id].external_ids.resize(num_externals);
    for (std::uint32_t i = 0; i < num_externals; ++i) {
      if (!r.U64(&out->entries_[id].external_ids[i])) {
        return util::Status::ParseError("truncated external");
      }
    }
  }
  if (!r.VerifyChecksum()) {
    return util::Status::ParseError("checksum mismatch in " + path);
  }
  // A malformed blob that survived the size/range checks (e.g. broken span
  // tiling) must not reach the walk; the validator covers exactly that.
  RDFC_RETURN_NOT_OK(ValidateFrozen(*out));
  return out;
}

util::Status SaveTieredIndex(const std::vector<TieredShardRef>& shards,
                             const std::string& path) {
  if (shards.empty() || shards.size() > kMaxTieredShards) {
    return util::Status::InvalidArgument("implausible shard count " +
                                         std::to_string(shards.size()));
  }
  // Every base blob first: until the manifest below commits, the previous
  // manifest keeps pointing at the previous generations' blobs, so a crash
  // anywhere in between recovers to the older — but consistent — version.
  for (std::size_t s = 0; s < shards.size(); ++s) {
    if (shards[s].base == nullptr) continue;
    RDFC_RETURN_NOT_OK(SaveFrozenIndex(
        *shards[s].base, TieredBasePath(path, s, shards[s].generation)));
  }
  if (RDFC_FAILPOINT("compact.crash")) {
    // Simulated crash in exactly that window: new bases committed, manifest
    // not.  rdfc_fuzz and the persistence tests assert the old manifest
    // still loads.
    return util::Status::Internal("failpoint compact.crash");
  }

  AtomicFileWriter out(path);
  RDFC_RETURN_NOT_OK(out.Open());
  Writer w(out.file());
  w.Raw(kTieredMagic, sizeof(kTieredMagic));
  w.U32(static_cast<std::uint32_t>(shards.size()));
  // Every tier of every shard shares the service dictionary; an all-empty
  // version writes the one-slot (null term only) dictionary.
  {
    const rdf::TermDictionary* dict = nullptr;
    for (const TieredShardRef& shard : shards) {
      if (shard.base != nullptr) {
        dict = &shard.base->dict();
        break;
      }
      if (shard.delta != nullptr) {
        dict = &shard.delta->dict();
        break;
      }
    }
    if (dict != nullptr) {
      WriteDictionary(&w, *dict);
    } else {
      w.U32(1);
    }
  }
  for (const TieredShardRef& shard : shards) {
    w.U64(shard.generation);
    w.U8(shard.base != nullptr ? 1 : 0);
    w.U32(static_cast<std::uint32_t>(shard.tombstones->size()));
    for (std::uint64_t ext : *shard.tombstones) w.U64(ext);
    // The shard's delta journal, in the SaveIndex live-entry encoding.
    std::uint32_t live = 0;
    if (shard.delta != nullptr) {
      for (std::uint32_t id = 0; id < shard.delta->num_entries(); ++id) {
        live += shard.delta->alive(id) ? 1 : 0;
      }
    }
    w.U32(live);
    if (shard.delta != nullptr) {
      for (std::uint32_t id = 0; id < shard.delta->num_entries(); ++id) {
        if (!shard.delta->alive(id)) continue;
        WriteEntryBody(&w, shard.delta->entry(id),
                       shard.delta->external_ids(id));
      }
    }
  }
  w.Finish();
  if (!w.ok()) return util::Status::Internal("write failed: " + path);
  RDFC_RETURN_NOT_OK(out.Commit());
  // The previous generations' base blobs are unreachable now; best effort —
  // a leftover blob is wasted space, never incorrectness.
  for (std::size_t s = 0; s < shards.size(); ++s) {
    if (shards[s].generation > 0) {
      (void)std::remove(
          TieredBasePath(path, s, shards[s].generation - 1).c_str());
    }
  }
  return util::Status::OK();
}

util::Result<TieredImage> LoadTieredIndex(const std::string& path,
                                          rdf::TermDictionary* dict) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return util::Status::NotFound("cannot open for reading: " + path);
  }
  Reader r(file.get());
  char magic[8];
  if (!r.Raw(magic, sizeof(magic)) ||
      std::memcmp(magic, kTieredMagic, sizeof(kTieredMagic)) != 0) {
    return util::Status::ParseError("bad magic in " + path);
  }
  std::uint32_t num_shards = 0;
  if (!r.U32(&num_shards) || num_shards == 0 ||
      num_shards > kMaxTieredShards) {
    return util::Status::ParseError("truncated or implausible shard count");
  }
  std::vector<rdf::TermId> remap;
  RDFC_RETURN_NOT_OK(ReadDictionary(&r, dict, &remap));

  TieredImage image;
  image.shards.resize(num_shards);
  std::vector<std::uint8_t> has_base(num_shards, 0);
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    TieredShardImage& shard = image.shards[s];
    if (!r.U64(&shard.generation) || !r.U8(&has_base[s]) || has_base[s] > 1) {
      return util::Status::ParseError("truncated shard header");
    }
    std::uint32_t num_tombstones = 0;
    if (!r.U32(&num_tombstones) ||
        static_cast<std::uint64_t>(num_tombstones) * 8 > r.remaining()) {
      return util::Status::ParseError("truncated or implausible tombstones");
    }
    shard.tombstones.resize(num_tombstones);
    for (std::uint32_t i = 0; i < num_tombstones; ++i) {
      if (!r.U64(&shard.tombstones[i])) {
        return util::Status::ParseError("truncated tombstone");
      }
      if (i > 0 && shard.tombstones[i] <= shard.tombstones[i - 1]) {
        return util::Status::ParseError("tombstones not strictly ascending");
      }
    }

    std::uint32_t num_entries = 0;
    if (!r.U32(&num_entries)) {
      return util::Status::ParseError("truncated delta journal");
    }
    std::unique_ptr<MvIndex> delta;
    if (num_entries > 0) delta = std::make_unique<MvIndex>(dict);
    for (std::uint32_t e = 0; e < num_entries; ++e) {
      query::BgpQuery q;
      RDFC_RETURN_NOT_OK(ReadEntryQuery(&r, remap, &q));
      std::uint32_t num_externals = 0;
      if (!r.U32(&num_externals)) {
        return util::Status::ParseError("truncated externals");
      }
      for (std::uint32_t i = 0; i < num_externals; ++i) {
        std::uint64_t ext = 0;
        if (!r.U64(&ext)) return util::Status::ParseError("truncated external");
        RDFC_ASSIGN_OR_RETURN(MvIndex::InsertOutcome outcome,
                              delta->Insert(q, ext));
        (void)outcome;
      }
    }
    shard.delta = std::move(delta);
  }
  if (!r.VerifyChecksum()) {
    return util::Status::ParseError("checksum mismatch in " + path);
  }

  // Only a checksum-clean manifest names base blobs, so this load never
  // touches a half-written blob from a crashed compaction save.
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    if (has_base[s] == 0) continue;
    RDFC_ASSIGN_OR_RETURN(
        image.shards[s].base,
        LoadFrozenIndex(TieredBasePath(path, s, image.shards[s].generation),
                        dict));
  }
  return image;
}

}  // namespace index
}  // namespace rdfc
