#include "index/validate.h"

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "query/validate.h"

namespace rdfc {
namespace index {

namespace {

util::Status TreeError(std::size_t depth, const std::string& rule) {
  return util::Status::Internal("radix invariant violated at depth " +
                                std::to_string(depth) + ": " + rule);
}

struct TreeWalk {
  std::size_t num_entries;
  std::unordered_set<std::uint32_t> seen_ids;
  std::size_t num_nodes = 0;

  util::Status Visit(const RadixNode& node, std::size_t depth, bool is_root) {
    ++num_nodes;
    if (!is_root) {
      // T4: unary non-query chains must have been merged away, empty leaves
      // pruned.  (A query vertex may have any number of children.)
      if (!node.is_query() && node.edges.size() < 2) {
        return TreeError(depth,
                         node.edges.empty()
                             ? "non-query leaf (should have been pruned)"
                             : "non-query unary vertex (should have been "
                               "merged with its parent edge)");
      }
    }
    for (std::uint32_t id : node.stored_ids) {
      if (id >= num_entries) {
        return TreeError(depth, "stored id " + std::to_string(id) +
                                    " out of range (dangling terminal bit)");
      }
      if (!seen_ids.insert(id).second) {
        return TreeError(depth, "stored id " + std::to_string(id) +
                                    " appears on more than one vertex");
      }
    }
    for (const auto& [first, edge] : node.edges) {
      if (edge.label.empty()) {
        return TreeError(depth, "empty edge label");  // T1
      }
      if (!(edge.label.front() == first)) {
        return TreeError(depth,
                         "edge keyed by a token that is not its label's "
                         "first token");  // T2 (and with the map, T3)
      }
      if (edge.child == nullptr) {
        return TreeError(depth, "edge with a null child");
      }
      RDFC_RETURN_NOT_OK(Visit(*edge.child, depth + 1, /*is_root=*/false));
    }
    return util::Status::OK();
  }
};

}  // namespace

util::Status ValidateRadixTree(const RadixNode& root, std::size_t num_entries) {
  TreeWalk walk;
  walk.num_entries = num_entries;
  return walk.Visit(root, 0, /*is_root=*/true);
}

util::Status ValidateMvIndex(const MvIndex& index) {
  RDFC_RETURN_NOT_OK(ValidateRadixTree(index.root(), index.num_entries()));

  const rdf::TermDictionary& dict = index.dict();

  // M4/M1 (side list half): skeleton-free entries are live, unique, and have
  // no serialised tokens.
  std::unordered_set<std::uint32_t> on_side_list;
  for (std::uint32_t id : index.skeleton_free_entries()) {
    if (id >= index.num_entries() || !index.alive(id)) {
      return util::Status::Internal("side list holds dead or dangling id " +
                                    std::to_string(id));
    }
    if (!on_side_list.insert(id).second) {
      return util::Status::Internal("side list holds id " +
                                    std::to_string(id) + " twice");
    }
    if (!index.entry(id).tokens.empty()) {
      return util::Status::Internal(
          "entry " + std::to_string(id) +
          " has a skeleton but sits on the skeleton-free side list");
    }
  }

  std::size_t live = 0;
  for (std::uint32_t id = 0; id < index.num_entries(); ++id) {
    if (!index.alive(id)) continue;
    ++live;
    const containment::PreparedStored& stored = index.entry(id);
    if (stored.tokens.empty()) {
      if (on_side_list.count(id) == 0) {
        return util::Status::Internal("skeleton-free entry " +
                                      std::to_string(id) +
                                      " missing from the side list");
      }
      continue;
    }

    // M3: grammar + round-trip identity against the canonical skeleton.
    RDFC_RETURN_NOT_OK(query::ValidateSerialisation(stored.tokens, dict));
    RDFC_ASSIGN_OR_RETURN(query::BgpQuery reparsed,
                          query::ParseSerialisation(stored.tokens, dict));
    query::BgpQuery skeleton;
    skeleton.set_form(query::QueryForm::kAsk);
    std::unordered_set<rdf::Triple, rdf::TripleHash> var_pred(
        stored.var_pred_patterns.begin(), stored.var_pred_patterns.end());
    for (const rdf::Triple& t : stored.canonical.patterns()) {
      if (var_pred.count(t) == 0) skeleton.AddPattern(t);
    }
    if (!skeleton.SamePatterns(reparsed)) {
      return util::Status::Internal(
          "entry " + std::to_string(id) +
          ": serialised tokens do not round-trip to the canonical skeleton");
    }

    // M2: prefix soundness — the token stream must walk edge labels exactly
    // and terminate at the vertex holding this id.
    const RadixNode* node = &index.root();
    std::size_t i = 0;
    while (i < stored.tokens.size()) {
      auto it = node->edges.find(stored.tokens[i]);
      if (it == node->edges.end()) {
        return util::Status::Internal("entry " + std::to_string(id) +
                                      ": no edge for token " +
                                      std::to_string(i));
      }
      const std::vector<query::Token>& label = it->second.label;
      if (i + label.size() > stored.tokens.size()) {
        return util::Status::Internal(
            "entry " + std::to_string(id) +
            ": edge label overruns the entry's serialisation");
      }
      for (std::size_t k = 0; k < label.size(); ++k) {
        if (!(label[k] == stored.tokens[i + k])) {
          return util::Status::Internal(
              "entry " + std::to_string(id) + ": edge label diverges at token " +
              std::to_string(i + k) + " (prefix soundness)");
        }
      }
      i += label.size();
      node = it->second.child.get();
    }
    bool found = false;
    for (std::uint32_t sid : node->stored_ids) found = found || sid == id;
    if (!found) {
      return util::Status::Internal(
          "entry " + std::to_string(id) +
          ": serialised path ends at a vertex that does not store it");
    }
  }

  // M1 (tree half): every id the tree stores belongs to a live entry.  The
  // tree walk above already guaranteed uniqueness and range; recount here.
  std::size_t in_tree = 0;
  std::vector<const RadixNode*> pending = {&index.root()};
  while (!pending.empty()) {
    const RadixNode* node = pending.back();
    pending.pop_back();
    for (std::uint32_t id : node->stored_ids) {
      if (!index.alive(id)) {
        return util::Status::Internal("tree stores dead entry " +
                                      std::to_string(id));
      }
      ++in_tree;
    }
    for (const auto& [first, edge] : node->edges) {
      (void)first;
      pending.push_back(edge.child.get());
    }
  }
  if (in_tree + on_side_list.size() != live) {
    return util::Status::Internal(
        "live-entry recount mismatch: tree=" + std::to_string(in_tree) +
        " side=" + std::to_string(on_side_list.size()) +
        " live=" + std::to_string(live));
  }

  // M5: incremental counters agree with a full recount.
  const RadixStats stats = ComputeRadixStats(index.root());
  if (stats.num_nodes != index.num_nodes()) {
    return util::Status::Internal(
        "num_nodes counter drifted: counter=" +
        std::to_string(index.num_nodes()) +
        " recount=" + std::to_string(stats.num_nodes));
  }
  if (live != index.num_live_entries()) {
    return util::Status::Internal(
        "num_live_entries counter drifted: counter=" +
        std::to_string(index.num_live_entries()) +
        " recount=" + std::to_string(live));
  }
  return util::Status::OK();
}

util::Status ValidateFrozen(const FrozenMvIndex& frozen) {
  const auto& nodes = frozen.nodes();
  const auto& first = frozen.edge_first_tokens();
  const auto& offsets = frozen.edge_label_offsets();
  const auto& lens = frozen.edge_label_lens();
  const auto& pool = frozen.label_pool();
  const auto& stored = frozen.stored_ids();
  auto err = [](const std::string& rule) {
    return util::Status::Internal("frozen invariant violated: " + rule);
  };

  if (nodes.empty()) return err("no root node");
  if (first.size() != offsets.size() || first.size() != lens.size()) {
    return err("edge array sizes diverge");
  }

  // F1: spans tile the pools, in order.
  std::size_t edge_total = 0;
  std::size_t child_total = 1;  // the root is node 0
  std::size_t stored_total = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const FrozenMvIndex::Node& n = nodes[i];
    if (n.first_edge != edge_total || n.first_child != child_total ||
        n.stored_begin != stored_total) {
      return err("node " + std::to_string(i) + " spans break BFS tiling");
    }
    edge_total += n.num_edges;
    child_total += n.num_edges;
    stored_total += n.stored_count;
  }
  if (edge_total != first.size() || child_total != nodes.size() ||
      stored_total != stored.size()) {
    return err("span totals do not cover the pools");
  }
  std::size_t label_total = 0;
  for (std::size_t e = 0; e < first.size(); ++e) {
    if (offsets[e] != label_total) {
      return err("label offsets break tiling at edge " + std::to_string(e));
    }
    if (lens[e] == 0) return err("empty edge label");  // F2 (T1 half)
    label_total += lens[e];
  }
  if (label_total != pool.size()) return err("label pool size mismatch");

  // F2: dispatch token == the label's first token.
  for (std::size_t e = 0; e < first.size(); ++e) {
    if (!(first[e] == pool[offsets[e]])) {
      return err("dispatch token diverges from label at edge " +
                 std::to_string(e));
    }
  }

  // F3/F4: sorted dispatch spans; no non-query unary pass-throughs.
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const FrozenMvIndex::Node& n = nodes[i];
    for (std::uint32_t j = 1; j < n.num_edges; ++j) {
      if (!FrozenTokenLess(first[n.first_edge + j - 1],
                           first[n.first_edge + j])) {
        return err("dispatch span of node " + std::to_string(i) +
                   " not strictly sorted");
      }
    }
    if (i != 0 && n.stored_count == 0 && n.num_edges < 2) {
      return err("node " + std::to_string(i) +
                 (n.num_edges == 0 ? " is a non-query leaf"
                                   : " is a non-query unary vertex"));
    }
  }

  // F5 (id half): range, liveness, uniqueness; the side list; counters.
  std::unordered_set<std::uint32_t> seen;
  for (std::uint32_t id : stored) {
    if (id >= frozen.num_entries() || !frozen.alive(id)) {
      return err("stored id " + std::to_string(id) + " dead or out of range");
    }
    if (!seen.insert(id).second) {
      return err("stored id " + std::to_string(id) + " appears twice");
    }
  }
  std::unordered_set<std::uint32_t> on_side_list;
  for (std::uint32_t id : frozen.skeleton_free_entries()) {
    if (id >= frozen.num_entries() || !frozen.alive(id)) {
      return err("side list holds dead or dangling id " + std::to_string(id));
    }
    if (!on_side_list.insert(id).second) {
      return err("side list holds id " + std::to_string(id) + " twice");
    }
    if (!frozen.entry(id).tokens.empty()) {
      return err("entry " + std::to_string(id) +
                 " has a skeleton but sits on the side list");
    }
  }
  std::size_t live = 0;
  for (std::uint32_t id = 0; id < frozen.num_entries(); ++id) {
    if (!frozen.alive(id)) continue;
    ++live;
    const containment::PreparedStored& entry = frozen.entry(id);
    if (entry.tokens.empty()) {
      if (on_side_list.count(id) == 0) {
        return err("skeleton-free entry " + std::to_string(id) +
                   " missing from the side list");
      }
      continue;
    }

    // F5 (prefix half): the entry's tokens walk whole labels through the
    // flat arrays and end at a node that stores the id (the M2 mirror).
    std::uint32_t node_idx = 0;
    std::size_t i = 0;
    while (i < entry.tokens.size()) {
      const FrozenMvIndex::Node& n = nodes[node_idx];
      std::int64_t ordinal = -1;
      for (std::uint32_t j = 0; j < n.num_edges; ++j) {
        if (first[n.first_edge + j] == entry.tokens[i]) {
          ordinal = j;
          break;
        }
      }
      if (ordinal < 0) {
        return err("entry " + std::to_string(id) + ": no edge for token " +
                   std::to_string(i));
      }
      const std::uint32_t e = n.first_edge + static_cast<std::uint32_t>(ordinal);
      if (i + lens[e] > entry.tokens.size()) {
        return err("entry " + std::to_string(id) +
                   ": edge label overruns the serialisation");
      }
      for (std::uint32_t k = 0; k < lens[e]; ++k) {
        if (!(pool[offsets[e] + k] == entry.tokens[i + k])) {
          return err("entry " + std::to_string(id) +
                     ": edge label diverges at token " + std::to_string(i + k));
        }
      }
      i += lens[e];
      node_idx = n.first_child + static_cast<std::uint32_t>(ordinal);
    }
    const FrozenMvIndex::Node& end = nodes[node_idx];
    bool found = false;
    for (std::uint32_t j = 0; j < end.stored_count; ++j) {
      found = found || stored[end.stored_begin + j] == id;
    }
    if (!found) {
      return err("entry " + std::to_string(id) +
                 ": serialised path ends at a node that does not store it");
    }
  }
  if (seen.size() + on_side_list.size() != live ||
      live != frozen.num_live_entries()) {
    return err("live-entry recount mismatch: tree=" +
               std::to_string(seen.size()) +
               " side=" + std::to_string(on_side_list.size()) +
               " live=" + std::to_string(live) + " counter=" +
               std::to_string(frozen.num_live_entries()));
  }
  return util::Status::OK();
}

}  // namespace index
}  // namespace rdfc
