#pragma once

#include <atomic>
#include <cstdint>

namespace rdfc {
namespace index {

/// Process-wide high-water marks of the probe walk's thread-local scratch
/// (frozen_index.cc FindContaining).  Every pool worker that walks a shard
/// owns its own recycled scratch (thread_local), so with probe fan-out the
/// total parked scratch scales with the worker count — these gauges make a
/// shard-walk allocation regression visible in rdfc_stats instead of only
/// in a heap profile.
struct WalkScratchStats {
  /// Deepest frame-stack capacity any walk reached (tree depth proxy).
  std::uint64_t frame_high_water = 0;
  /// Most MatchState slots parked across one thread's recycled buffers.
  std::uint64_t states_high_water = 0;
  /// Most recycled state buffers parked by one thread (capped by the walk).
  std::uint64_t spare_high_water = 0;
};

namespace internal {

/// Monotonic maxima, updated lock-free from the probe path.  Atomics (not a
/// mutex) deliberately: this is RDFC_READPATH territory.
inline std::atomic<std::uint64_t>& WalkFrameGauge() {
  static std::atomic<std::uint64_t> gauge{0};
  return gauge;
}
inline std::atomic<std::uint64_t>& WalkStatesGauge() {
  static std::atomic<std::uint64_t> gauge{0};
  return gauge;
}
inline std::atomic<std::uint64_t>& WalkSpareGauge() {
  static std::atomic<std::uint64_t> gauge{0};
  return gauge;
}

inline void RaiseGauge(std::atomic<std::uint64_t>& gauge, std::uint64_t value) {
  std::uint64_t seen = gauge.load(std::memory_order_relaxed);
  while (value > seen &&
         !gauge.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

/// Called once per walk with the walk's final scratch footprint.
inline void NoteWalkScratch(std::uint64_t frames, std::uint64_t states,
                            std::uint64_t spares) {
  RaiseGauge(WalkFrameGauge(), frames);
  RaiseGauge(WalkStatesGauge(), states);
  RaiseGauge(WalkSpareGauge(), spares);
}

}  // namespace internal

inline WalkScratchStats SampleWalkScratchStats() {
  WalkScratchStats stats;
  stats.frame_high_water =
      internal::WalkFrameGauge().load(std::memory_order_relaxed);
  stats.states_high_water =
      internal::WalkStatesGauge().load(std::memory_order_relaxed);
  stats.spare_high_water =
      internal::WalkSpareGauge().load(std::memory_order_relaxed);
  return stats;
}

}  // namespace index
}  // namespace rdfc
