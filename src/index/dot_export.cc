#include "index/dot_export.h"

#include <functional>

#include "util/string_util.h"

namespace rdfc {
namespace index {

namespace {

std::string ShortIri(const std::string& iri) {
  std::size_t cut = iri.find_last_of("/#");
  std::string out = cut == std::string::npos ? iri : iri.substr(cut + 1);
  if (out.empty()) out = iri;
  if (out.size() > 18) out = out.substr(0, 15) + "...";
  return out;
}

std::string EscapeDot(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string TokenLabel(const query::Token& tok,
                       const rdf::TermDictionary& dict) {
  auto term_label = [&](rdf::TermId t) {
    switch (dict.kind(t)) {
      case rdf::TermKind::kIri:
        return ShortIri(dict.lexical(t));
      case rdf::TermKind::kVariable:
        return "?" + dict.lexical(t);
      default:
        return ShortIri(dict.lexical(t));
    }
  };
  switch (tok.type) {
    case query::TokenType::kAnchor:
      return term_label(tok.term);
    case query::TokenType::kPair:
      return "<" + ShortIri(dict.lexical(tok.pred)) +
             (tok.inverse ? ">⁻¹," : ">,") + term_label(tok.term);
    case query::TokenType::kOpen:
      return "(";
    case query::TokenType::kClose:
      return ")";
    case query::TokenType::kSeparator:
      return "||";
  }
  return "?";
}

}  // namespace

std::string ExportDot(const MvIndex& index, std::size_t max_label_tokens) {
  const rdf::TermDictionary& dict = index.dict();
  std::string out = "digraph mvindex {\n  rankdir=LR;\n  node [shape=circle,"
                    " label=\"\", width=0.18];\n";
  std::size_t next_id = 0;
  std::function<std::size_t(const RadixNode&)> emit =
      [&](const RadixNode& node) -> std::size_t {
    const std::size_t my_id = next_id++;
    if (node.is_query()) {
      std::string ids;
      for (std::uint32_t sid : node.stored_ids) {
        if (!ids.empty()) ids += ",";
        ids += std::to_string(sid);
      }
      out += "  n" + std::to_string(my_id) +
             " [shape=doublecircle, width=0.25, label=\"" + ids + "\"];\n";
    }
    for (const auto& [first, edge] : node.edges) {
      (void)first;
      std::vector<std::string> parts;
      for (std::size_t i = 0;
           i < edge.label.size() && i < max_label_tokens; ++i) {
        parts.push_back(TokenLabel(edge.label[i], dict));
      }
      if (edge.label.size() > max_label_tokens) {
        parts.push_back("+" +
                        std::to_string(edge.label.size() - max_label_tokens));
      }
      const std::size_t child_id = emit(*edge.child);
      out += "  n" + std::to_string(my_id) + " -> n" +
             std::to_string(child_id) + " [label=\"" +
             EscapeDot(util::Join(parts, " ")) + "\"];\n";
    }
    return my_id;
  };
  emit(index.root());
  out += "}\n";
  return out;
}

}  // namespace index
}  // namespace rdfc
