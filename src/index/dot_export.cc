#include "index/dot_export.h"

#include <string>
#include <vector>

#include "util/string_util.h"

namespace rdfc {
namespace index {

namespace {

std::string ShortIri(const std::string& iri) {
  std::size_t cut = iri.find_last_of("/#");
  std::string out = cut == std::string::npos ? iri : iri.substr(cut + 1);
  if (out.empty()) out = iri;
  if (out.size() > 18) out = out.substr(0, 15) + "...";
  return out;
}

std::string EscapeDot(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string TokenLabel(const query::Token& tok,
                       const rdf::TermDictionary& dict) {
  auto term_label = [&](rdf::TermId t) {
    switch (dict.kind(t)) {
      case rdf::TermKind::kIri:
        return ShortIri(dict.lexical(t));
      case rdf::TermKind::kVariable:
        return "?" + dict.lexical(t);
      default:
        return ShortIri(dict.lexical(t));
    }
  };
  switch (tok.type) {
    case query::TokenType::kAnchor:
      return term_label(tok.term);
    case query::TokenType::kPair:
      return "<" + ShortIri(dict.lexical(tok.pred)) +
             (tok.inverse ? ">⁻¹," : ">,") + term_label(tok.term);
    case query::TokenType::kOpen:
      return "(";
    case query::TokenType::kClose:
      return ")";
    case query::TokenType::kSeparator:
      return "||";
  }
  return "?";
}

}  // namespace

std::string ExportDot(const MvIndex& index, std::size_t max_label_tokens) {
  const rdf::TermDictionary& dict = index.dict();
  std::string out = "digraph mvindex {\n  rankdir=LR;\n  node [shape=circle,"
                    " label=\"\", width=0.18];\n";
  // Explicit frame stack (deep chain workloads must not recurse), emitting
  // in the same order recursion would: a node's declaration on entry, each
  // parent->child edge line right after the child's whole subtree.
  struct Frame {
    std::size_t id = 0;
    std::vector<const RadixNode::Edge*> edges;  // snapshot, map order
    std::size_t next = 0;
    // Emitted when this frame pops (subtree complete); empty for the root.
    std::string edge_line;
  };
  std::size_t next_id = 0;
  auto enter = [&](const RadixNode& node) {
    Frame frame;
    frame.id = next_id++;
    if (node.is_query()) {
      std::string ids;
      for (std::uint32_t sid : node.stored_ids) {
        if (!ids.empty()) ids += ",";
        ids += std::to_string(sid);
      }
      out += "  n" + std::to_string(frame.id) +
             " [shape=doublecircle, width=0.25, label=\"" + ids + "\"];\n";
    }
    frame.edges.reserve(node.edges.size());
    for (const auto& [first, edge] : node.edges) {
      (void)first;
      frame.edges.push_back(&edge);
    }
    return frame;
  };
  std::vector<Frame> stack;
  stack.push_back(enter(index.root()));
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next == frame.edges.size()) {
      out += frame.edge_line;
      stack.pop_back();
      continue;
    }
    const RadixNode::Edge& edge = *frame.edges[frame.next++];
    std::vector<std::string> parts;
    for (std::size_t i = 0; i < edge.label.size() && i < max_label_tokens;
         ++i) {
      parts.push_back(TokenLabel(edge.label[i], dict));
    }
    if (edge.label.size() > max_label_tokens) {
      parts.push_back("+" +
                      std::to_string(edge.label.size() - max_label_tokens));
    }
    Frame child = enter(*edge.child);
    child.edge_line = "  n" + std::to_string(frame.id) + " -> n" +
                      std::to_string(child.id) + " [label=\"" +
                      EscapeDot(util::Join(parts, " ")) + "\"];\n";
    stack.push_back(std::move(child));
  }
  out += "}\n";
  return out;
}

}  // namespace index
}  // namespace rdfc
