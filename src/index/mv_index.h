#pragma once

#include <cstdint>
#include <vector>

#include "containment/pipeline.h"
#include "index/radix_node.h"
#include "query/bgp_query.h"
#include "rdf/dictionary.h"
#include "util/status.h"

namespace rdfc {
namespace index {

/// Probe-time knobs for MvIndex::FindContaining.
struct ProbeOptions {
  /// Run the NP verification on candidates that need it (Section 5.1); with
  /// this off, the probe reports every *candidate* (PTime filter survivors),
  /// which over-approximates the true answer for non-f-graph probes.
  bool verify = true;
  /// Concrete containment mappings to materialise per contained query.
  std::size_t max_mappings = 0;
  /// Step cap for each NP verification (0 = unbounded).
  std::size_t max_np_steps = 0;
  /// Cooperative cancellation (DESIGN.md "Resilience"): the walk polls it
  /// per tree vertex and the verification per σ_w / per NP step.  On expiry
  /// the probe returns a *degraded* ProbeResult — reported candidates are
  /// still genuine filter survivors and reported matches still carry
  /// verified certificates, but the enumeration/verification may be cut
  /// short (see ProbeResult::degraded()).  Not owned; may be null.
  util::ProbeBudget* budget = nullptr;
};

/// One indexed query found to contain the probe.
struct ProbeMatch {
  std::uint32_t stored_id = 0;
  containment::CheckOutcome outcome;
};

/// Result of a containment probe plus the work counters the evaluation
/// section reports on.
struct ProbeResult {
  std::vector<ProbeMatch> contained;
  std::size_t candidates = 0;      // stored queries whose filter passed
  std::size_t np_checks = 0;       // candidates that required NP verification
  std::size_t states_explored = 0; // matcher states advanced during the walk
  double filter_micros = 0.0;      // time in the radix walk (PTime filter)
  double verify_micros = 0.0;      // time deciding candidates (incl. NP)

  /// False when the budget expired before the walk visited every reachable
  /// tree vertex: candidates reported are genuine but possibly not all of
  /// them.
  bool filter_complete = true;
  /// Stored ids whose filter passed but whose verification did not reach a
  /// verdict (budget expiry or step cap).  Disjoint from `contained`; the
  /// degradation contract is that real answers can hide here but everything
  /// in `contained` is certified.
  std::vector<std::uint32_t> unverified;

  /// True when any part of the probe was cut short — the service reports
  /// these as the distinct Degraded outcome.
  bool degraded() const { return !filter_complete || !unverified.empty(); }
};

/// The paper's core contribution: the materialised-view index (Section 4).
///
/// A Radix tree over the serialised forms of the indexed queries.  Inserting
/// N queries that share patterns collapses their common serialised prefixes
/// into shared edges; probing with a query Q walks the tree once per witness
/// class of Q, advancing the Algorithm-2 matcher along edge labels and
/// forking only at branch vertices (Algorithm 3) — so one edge test covers
/// every indexed query below that edge.
///
/// Queries with variable predicates are indexed by their skeleton
/// serialisation with the var-predicate patterns kept aside (Section 5.2);
/// queries whose patterns are *all* var-predicate live on a side list and
/// are checked directly (they have no skeleton to index).
struct IndexOptions {
  /// When true, inserted queries are canonically labelled (isomorphism-
  /// exact, query/canonical_label.h) before serialisation, so isomorphic
  /// queries dedup onto one entry even when serialisation tie-breaks (raw
  /// term-id order) would have told them apart.  Costs ~1 µs extra per
  /// insertion; probe behaviour is unchanged.
  bool exact_dedup = false;
};

class MvIndex {
 public:
  explicit MvIndex(rdf::TermDictionary* dict, const IndexOptions& options = {})
      : dict_(dict), options_(options) {}
  RDFC_DISALLOW_COPY_AND_ASSIGN(MvIndex);

  struct InsertOutcome {
    std::uint32_t stored_id = 0;
    bool was_new = false;  // false: the query deduplicated onto an entry
  };

  /// Inserts (or dedups) a query.  `external_id` is an opaque caller handle
  /// (e.g. the position in a workload) recorded against the entry.
  /// Complexity: serialisation O(|W| log |W|) + radix insertion O(|Ws|)
  /// expected (hash-indexed edges, optimisation III).
  [[nodiscard]] util::Result<InsertOutcome> Insert(const query::BgpQuery& w,
                                     std::uint64_t external_id = 0);

  /// Removes a stored entry (a "view dropped" event, the paper's future-work
  /// maintenance direction).  Walks the entry's serialised path, detaches
  /// the id, prunes now-empty leaf vertices, and re-merges single-child
  /// non-query vertices with their parent edge so the Radix invariants
  /// (distinct first tokens, no redundant unary chains) are restored.
  /// Returns NotFound for unknown or already-removed ids.  Stored ids are
  /// never reused; `entry(id)` stays valid for removed ids but `alive(id)`
  /// turns false.
  [[nodiscard]] util::Status Remove(std::uint32_t stored_id);

  bool alive(std::uint32_t stored_id) const {
    return stored_id < entries_.size() && entries_[stored_id].alive;
  }
  /// Number of live entries (num_entries() counts all ever stored).
  std::size_t num_live_entries() const { return num_live_; }

  /// Finds every indexed query W with Q ⊑ W (Theorem 4.2 + Section 5
  /// extensions).  Runs the tree walk once per witness class of `q`.
  ProbeResult FindContaining(const query::BgpQuery& q,
                             const ProbeOptions& options = {}) const;

  /// Overload taking an already-prepared probe (witness + f-graph view),
  /// for callers that probe the same query against several indexes or
  /// interleave probes with other per-query work — preparation is the
  /// fixed per-probe cost.
  ProbeResult FindContaining(const containment::PreparedProbe& probe,
                             const ProbeOptions& options = {}) const;

  /// Pairwise baseline: same verdicts, but checks every stored entry
  /// individually without the shared-prefix tree (the "inefficient to make
  /// each and every comparison" strawman of Section 4).  Used by the
  /// ablation bench and the equivalence tests.
  ProbeResult ScanContaining(const query::BgpQuery& q,
                             const ProbeOptions& options = {}) const;

  /// The dual direction: every live entry W with W ⊑ q.  The mv-index is
  /// built for the forward direction, so this is a guarded scan (each entry
  /// is the probe, q the stored side); it exists for maintenance flows —
  /// e.g. a cache admitting a broad query can evict the entries it subsumes.
  /// Cost: O(live entries × pipeline check).  Non-const: preparing q as the
  /// stored side interns into the dictionary (writer-side).
  std::vector<std::uint32_t> FindContainedBy(const query::BgpQuery& q);

  /// Merges every live entry of `other` into this index (set union of the
  /// stored query sets; external ids carried over, duplicates dedup onto
  /// existing entries).  Both indexes must share the same dictionary —
  /// the common case of sharding one workload across builders.
  [[nodiscard]] util::Status MergeFrom(const MvIndex& other);

  std::size_t num_entries() const { return entries_.size(); }
  std::size_t num_insertions() const { return num_insertions_; }
  const containment::PreparedStored& entry(std::uint32_t stored_id) const {
    return entries_[stored_id].prepared;
  }
  const std::vector<std::uint64_t>& external_ids(std::uint32_t stored_id) const {
    return entries_[stored_id].external_ids;
  }

  /// Structural statistics (node/edge counts; the paper's Figure 3a x-axis).
  RadixStats ComputeStats() const;
  /// Cheap incremental node count (root excluded to match "intermediate
  /// vertices" reporting; maintained during insertion).
  std::size_t num_nodes() const { return num_nodes_; }

  const RadixNode& root() const { return root_; }
  /// Read-only dictionary view — all the probe path needs.  Keeping the
  /// const accessor const-typed is what lets the service hand read threads
  /// a `const MvIndex&` and know they cannot intern.
  const rdf::TermDictionary& dict() const { return *dict_; }
  /// Writer-side handle (insert/remove paths intern terms).
  rdf::TermDictionary* mutable_dict() { return dict_; }

  /// Entries that have no indexable skeleton (every pattern has a variable
  /// predicate); the probe checks these directly.
  const std::vector<std::uint32_t>& skeleton_free_entries() const {
    return skeleton_free_;
  }

 private:
  struct Entry {
    containment::PreparedStored prepared;
    std::vector<std::uint64_t> external_ids;
    bool alive = true;
  };

  rdf::TermDictionary* dict_;
  IndexOptions options_;
  RadixNode root_;
  std::vector<Entry> entries_;
  std::vector<std::uint32_t> skeleton_free_;  // entries with no skeleton
  std::size_t num_nodes_ = 1;                 // counts the root
  std::size_t num_insertions_ = 0;
  std::size_t num_live_ = 0;
};

}  // namespace index
}  // namespace rdfc
