#include "index/frozen_index.h"

#include <algorithm>

#include "index/probe_walk.h"
#include "index/walk_stats.h"
#include "util/timer.h"

namespace rdfc {
namespace index {

namespace {

using containment::MatchState;

/// [lo, hi) of the edges in `span[0..n)` whose dispatch token has class
/// `key` (FrozenTokenClassKey: pred, type, inverse).  The span is sorted by
/// FrozenTokenLess, so the class forms one contiguous run; linear scan for
/// small fan-out, binary lower bound above that (mirrors FindEdge's hybrid).
std::pair<std::uint32_t, std::uint32_t> ClassRange(const query::Token* span,
                                                   std::uint32_t n,
                                                   std::uint64_t key) {
  std::uint32_t lo = 0;
  if (n <= 8) {
    // NOLINTNEXTLINE(budget-poll-coverage): linear scan capped at 8 edges.
    while (lo < n && FrozenTokenClassKey(span[lo]) < key) ++lo;
  } else {
    std::uint32_t hi_b = n;
    // NOLINTNEXTLINE(budget-poll-coverage): binary search, O(log n) probes.
    while (lo < hi_b) {
      const std::uint32_t mid = lo + (hi_b - lo) / 2;
      if (FrozenTokenClassKey(span[mid]) < key) {
        lo = mid + 1;
      } else {
        hi_b = mid;
      }
    }
  }
  std::uint32_t hi = lo;
  // Equal-range scan over one (pred, type, inverse) class; bounded by the
  // node's edge count.
  // NOLINTNEXTLINE(budget-poll-coverage)
  while (hi < n && FrozenTokenClassKey(span[hi]) == key) ++hi;
  return {lo, hi};
}

/// Ordinal of the edge in [lo, hi) whose dispatch term is `term`, or -1.
/// The range shares one (pred, type, inverse) class and is term-sorted, so
/// the scan early-exits past `term`.
std::int64_t TermInRange(const query::Token* span, std::uint32_t lo,
                         std::uint32_t hi, rdf::TermId term) {
  for (std::uint32_t j = lo; j < hi; ++j) {
    if (span[j].term == term) return j;
    if (span[j].term > term) break;
  }
  return -1;
}

}  // namespace

FrozenMvIndex::FrozenMvIndex(const MvIndex& source) : dict_(&source.dict()) {
  // One BFS pass over the pointer tree.  `order[i]` is the source node that
  // became nodes_[i]; processing i appends i's children contiguously, which
  // is exactly the children-of-a-node-adjacent property first_child relies
  // on.  Indices (not iterators) throughout — the vectors grow as we go.
  std::vector<const RadixNode*> order;
  order.reserve(source.num_nodes() + 1);
  nodes_.reserve(source.num_nodes() + 1);
  order.push_back(&source.root());
  std::vector<const RadixNode::Edge*> sorted;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const RadixNode& src = *order[i];
    Node n;
    n.first_edge = static_cast<std::uint32_t>(edge_first_.size());
    n.num_edges = static_cast<std::uint32_t>(src.edges.size());
    n.first_child = static_cast<std::uint32_t>(order.size());
    n.stored_begin = static_cast<std::uint32_t>(stored_ids_.size());
    n.stored_count = static_cast<std::uint32_t>(src.stored_ids.size());
    stored_ids_.insert(stored_ids_.end(), src.stored_ids.begin(),
                       src.stored_ids.end());
    sorted.clear();
    sorted.reserve(src.edges.size());
    for (const auto& [first, edge] : src.edges) {
      (void)first;  // invariant T3: the map key is label.front()
      sorted.push_back(&edge);
    }
    std::sort(sorted.begin(), sorted.end(),
              [](const RadixNode::Edge* a, const RadixNode::Edge* b) {
                return FrozenTokenLess(a->label.front(), b->label.front());
              });
    for (const RadixNode::Edge* e : sorted) {
      edge_first_.push_back(e->label.front());
      edge_label_offset_.push_back(static_cast<std::uint32_t>(labels_.size()));
      edge_label_len_.push_back(static_cast<std::uint32_t>(e->label.size()));
      labels_.insert(labels_.end(), e->label.begin(), e->label.end());
      order.push_back(e->child.get());
    }
    nodes_.push_back(n);
  }

  // Entry table, carried over by stored id so frozen probes report the same
  // ids the pointer walk would.  Dead ids keep an empty (alive=false) slot;
  // the tree no longer references them, so the walk never reads one.
  entries_.resize(source.num_entries());
  for (std::uint32_t id = 0; id < entries_.size(); ++id) {
    if (!source.alive(id)) continue;
    entries_[id].prepared = source.entry(id);
    entries_[id].external_ids = source.external_ids(id);
    entries_[id].alive = true;
    ++num_live_;
  }
  skeleton_free_ = source.skeleton_free_entries();
}

std::int64_t FrozenMvIndex::FindEdge(const Node& node,
                                     const query::Token& token) const {
  const query::Token* first = edge_first_.data() + node.first_edge;
  if (node.num_edges <= 8) {
    for (std::uint32_t j = 0; j < node.num_edges; ++j) {
      if (first[j] == token) return j;
    }
    return -1;
  }
  std::uint32_t lo = 0;
  std::uint32_t hi = node.num_edges;
  // NOLINTNEXTLINE(budget-poll-coverage): binary search, O(log n) probes.
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (FrozenTokenLess(first[mid], token)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < node.num_edges && first[lo] == token) return lo;
  return -1;
}

ProbeResult FrozenMvIndex::FindContaining(const query::BgpQuery& q,
                                          const ProbeOptions& options) const {
  return FindContaining(containment::PrepareProbe(q, *dict_), options);
}

ProbeResult FrozenMvIndex::FindContaining(
    const containment::PreparedProbe& probe,
    const ProbeOptions& options) const {
  util::Timer timer;
  ProbeResult result;
  internal::CandidateSigmas candidate_sigmas;

  // Algorithm 3 over the flat arrays.  Same walk as cont_queries.cc —
  // identical candidate tokens, advancement, and σ_w accumulation — but the
  // per-vertex edge dispatch is a probe into the sorted first-token span
  // instead of a hash lookup, and recursion is an explicit frame stack.
  //
  // All scratch is thread_local and state-vector buffers are recycled
  // through `spare`, so a steady-state probe allocates only for the σ_w
  // copies it actually reports — the probe path is hot enough that malloc
  // churn was a measurable share of the walk.  thread_local is also what
  // makes the sharded fan-out safe: every pool worker walking a shard gets
  // its own recycled scratch, with no sharing between concurrent walkers of
  // the same snapshot.  The flip side is that parked scratch now scales
  // with the worker count, so the spare pool is capped and the high-water
  // marks are published (index/walk_stats.h, surfaced by rdfc_stats).
  struct Frame {
    std::uint32_t node = 0;
    std::vector<MatchState> states;
  };
  if (probe.view.num_vertices() > 0 && !nodes_.empty()) {
    thread_local std::vector<Frame> stack;
    // Survivors grouped by edge ordinal; a flat (ordinal, states) list —
    // fan-out actually advanced per vertex is small, so linear slot lookup
    // beats a map and the buffers move straight onto the frame stack.
    thread_local std::vector<std::pair<std::uint32_t, std::vector<MatchState>>>
        pending;
    thread_local std::vector<std::vector<MatchState>> spare;
    stack.clear();
    pending.clear();
    auto acquire = [] {
      if (spare.empty()) return std::vector<MatchState>();
      std::vector<MatchState> v = std::move(spare.back());
      spare.pop_back();
      v.clear();
      return v;
    };
    // Recycle a buffer, bounding each worker's parked pool: beyond the cap
    // the buffer is freed instead, so N fanned-out workers park at most
    // N x kMaxSpareBuffers buffers between probes, not an unbounded pile.
    constexpr std::size_t kMaxSpareBuffers = 64;
    auto park = [](std::vector<MatchState>&& v) {
      if (spare.size() < kMaxSpareBuffers) spare.push_back(std::move(v));
    };

    Frame root;
    root.states = acquire();
    root.states.reserve(probe.view.num_vertices());
    for (std::uint32_t cls = 0; cls < probe.view.num_vertices(); ++cls) {
      root.states.push_back(MatchState::AtAnchor(cls));
    }
    stack.push_back(std::move(root));

    while (!stack.empty()) {
      // Budget poll per tree vertex (same placement as the pointer walk):
      // candidates recorded so far stay genuine filter survivors.
      if (options.budget != nullptr && options.budget->Exhausted()) {
        result.filter_complete = false;
        for (Frame& f : stack) park(std::move(f.states));
        stack.clear();
        break;
      }
      Frame frame = std::move(stack.back());
      stack.pop_back();
      const Node& node = nodes_[frame.node];
      for (std::uint32_t j = 0; j < node.stored_count; ++j) {
        candidate_sigmas.emplace_back(stored_ids_[node.stored_begin + j],
                                      frame.states);
      }
      if (node.num_edges != 0) {
        pending.clear();
        const query::Token* span = edge_first_.data() + node.first_edge;
        auto advance = [&](std::uint32_t ordinal, const MatchState& st) {
          std::vector<MatchState>* slot = nullptr;
          for (auto& [ord, states] : pending) {
            if (ord == ordinal) {
              slot = &states;
              break;
            }
          }
          if (slot == nullptr) {
            pending.emplace_back(ordinal, acquire());
            slot = &pending.back().second;
          }
          MatchState copy = st;  // the paper's CopyOf
          const std::uint32_t edge_idx = node.first_edge + ordinal;
          internal::AdvanceLabel(probe.view, *dict_,
                                 labels_.data() + edge_label_offset_[edge_idx],
                                 edge_label_len_[edge_idx], 0, std::move(copy),
                                 slot, &result.states_explored);
        };
        auto probe_term = [&](std::uint32_t lo, std::uint32_t hi,
                              rdf::TermId term, const MatchState& st) {
          const std::int64_t e = TermInRange(span, lo, hi, term);
          if (e >= 0) advance(static_cast<std::uint32_t>(e), st);
        };
        // Structural-token ordinals and the anchor class range depend only
        // on the node — resolved once, reused by every state at this vertex.
        // All of them live in the pred-0 prefix of the span (anchors and
        // structural tokens sort before any pair, whose key is >= pred<<16),
        // so one short scan replaces three binary searches.
        std::int64_t sep_ord = -1;
        std::int64_t open_ord = -1;
        std::int64_t close_ord = -1;
        std::uint32_t alo = 0;  // anchors have class key 0: the span front
        std::uint32_t ahi = 0;
        for (std::uint32_t front = 0;
             front < node.num_edges &&
             FrozenTokenClassKey(span[front]) < (std::uint64_t{1} << 16);
             ++front) {
          switch (span[front].type) {
            case query::TokenType::kAnchor:
              ahi = front + 1;
              break;
            case query::TokenType::kOpen:
              open_ord = front;
              break;
            case query::TokenType::kClose:
              close_ord = front;
              break;
            case query::TokenType::kSeparator:
              sep_ord = front;
              break;
            case query::TokenType::kPair:  // unreachable: pairs have pred != 0
              break;
          }
        }
        // internal::CollectCandidateTokens fused with dispatch: the same
        // candidates are tried in the same order (the equivalence the tests
        // and rdfc_fuzz pin down), but pair candidates of an adjacency edge
        // resolve against the narrow (pred, direction) class range of the
        // sorted span — an adjacency edge whose predicate is absent at this
        // vertex costs one range probe instead of one token per possible
        // target, and no candidate vector is ever materialised.
        for (const MatchState& st : frame.states) {
          if (sep_ord >= 0) {
            advance(static_cast<std::uint32_t>(sep_ord), st);
          }
          const auto m = static_cast<std::uint32_t>(st.sigma.size());
          const rdf::TermId fresh = dict_->CanonicalVariableIfKnown(m + 1);
          if (st.v == MatchState::kNoVertex) {
            // Awaiting a component anchor (right after a separator).
            if (alo != ahi) {
              if (fresh != rdf::kNullTerm) probe_term(alo, ahi, fresh, st);
              for (const auto& [var, cls] : st.sigma) {
                (void)cls;
                probe_term(alo, ahi, var, st);
              }
              for (std::uint32_t cls = 0; cls < probe.view.num_vertices();
                   ++cls) {
                for (rdf::TermId c : probe.view.ConstantsIn(cls)) {
                  probe_term(alo, ahi, c, st);
                }
              }
            }
            continue;
          }
          if (open_ord >= 0) {
            advance(static_cast<std::uint32_t>(open_ord), st);
          }
          if (close_ord >= 0 && !st.path_stack.empty()) {
            advance(static_cast<std::uint32_t>(close_ord), st);
          }
          if (st.sigma.empty()) {
            // Root anchor (only the root can start with a stream-initial
            // anchor; one extra miss elsewhere is harmless).
            if (alo != ahi) {
              if (fresh != rdf::kNullTerm) probe_term(alo, ahi, fresh, st);
              for (rdf::TermId c : probe.view.ConstantsIn(st.v)) {
                probe_term(alo, ahi, c, st);
              }
            }
          }
          for (const containment::FGraphView::AdjEdge& adj :
               probe.view.Adjacency(st.v)) {
            const std::uint64_t key = FrozenTokenClassKey(
                query::Token::Pair(adj.pred, rdf::kNullTerm, adj.inverse));
            const auto [lo, hi] = ClassRange(span, node.num_edges, key);
            if (lo == hi) continue;
            if (fresh != rdf::kNullTerm) probe_term(lo, hi, fresh, st);
            for (const auto& [var, cls] : st.sigma) {
              if (cls == adj.target) probe_term(lo, hi, var, st);
            }
            for (rdf::TermId c : probe.view.ConstantsIn(adj.target)) {
              probe_term(lo, hi, c, st);
            }
          }
        }
        for (auto& [ordinal, survivors] : pending) {
          if (survivors.empty()) {
            park(std::move(survivors));
            continue;
          }
          Frame next;
          next.node = node.first_child + ordinal;
          next.states = std::move(survivors);
          stack.push_back(std::move(next));
        }
      }
      park(std::move(frame.states));
    }
    std::uint64_t parked_states = 0;
    for (const std::vector<MatchState>& v : spare) parked_states += v.capacity();
    internal::NoteWalkScratch(stack.capacity(), parked_states, spare.size());
  }
  result.filter_micros = timer.ElapsedMicros();
  timer.Restart();
  internal::DecideCandidates(*this, probe, *dict_, options, &candidate_sigmas,
                             &result);
  result.verify_micros = timer.ElapsedMicros();
  return result;
}

std::size_t FrozenMvIndex::StructureBytes() const {
  return nodes_.size() * sizeof(Node) +
         edge_first_.size() * sizeof(query::Token) +
         edge_label_offset_.size() * sizeof(std::uint32_t) +
         edge_label_len_.size() * sizeof(std::uint32_t) +
         labels_.size() * sizeof(query::Token) +
         stored_ids_.size() * sizeof(std::uint32_t);
}

}  // namespace index
}  // namespace rdfc
