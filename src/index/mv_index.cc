#include "index/mv_index.h"

#include "index/cont_queries.h"

#include "query/canonical_label.h"

#ifdef RDFC_PARANOID_CHECKS
#include "index/validate.h"
#endif

namespace rdfc {
namespace index {

namespace {

#ifdef RDFC_PARANOID_CHECKS
/// Scope guard re-validating the whole index on every exit path of a
/// mutation.  Compiled in only under -DRDFC_PARANOID_CHECKS=ON; the abort
/// mirrors RDFC_CHECK semantics (invariant corruption is a programmer error).
class ParanoidGuard {
 public:
  explicit ParanoidGuard(const MvIndex* index) : index_(index) {}
  ~ParanoidGuard() {
    const util::Status st = ValidateMvIndex(*index_);
    if (!st.ok()) {
      std::fprintf(stderr, "RDFC_PARANOID_CHECKS: %s\n", st.ToString().c_str());
      std::abort();
    }
  }

 private:
  const MvIndex* index_;
};
#define RDFC_PARANOID_VALIDATE(index) ParanoidGuard paranoid_guard(index)
#else
#define RDFC_PARANOID_VALIDATE(index) \
  do {                                \
  } while (0)
#endif

/// Length of the common prefix of `label` and tokens[from..].
std::size_t CommonPrefix(const std::vector<query::Token>& label,
                         const std::vector<query::Token>& tokens,
                         std::size_t from) {
  std::size_t k = 0;
  // NOLINTNEXTLINE(budget-poll-coverage): bounded by the edge label length.
  while (k < label.size() && from + k < tokens.size() &&
         label[k] == tokens[from + k]) {
    ++k;
  }
  return k;
}

}  // namespace

util::Result<MvIndex::InsertOutcome> MvIndex::Insert(
    const query::BgpQuery& w, std::uint64_t external_id) {
  RDFC_PARANOID_VALIDATE(this);
  if (w.empty()) {
    return util::Status::InvalidArgument("cannot index an empty query");
  }
  containment::PreparedStored prepared;
  if (options_.exact_dedup) {
    // Pre-normalise to the isomorphism-exact canonical form so serialisation
    // tie-breaks cannot tell isomorphic queries apart.  The canonical form
    // preserves the pattern structure, so containment semantics are
    // untouched — only dedup improves.
    const query::CanonicalForm form = query::CanonicalLabel(w, dict_);
    query::BgpQuery normalised;
    normalised.set_form(query::QueryForm::kAsk);
    for (const rdf::Triple& t : form.triples) normalised.AddPattern(t);
    RDFC_ASSIGN_OR_RETURN(prepared,
                          containment::PrepareStored(normalised, dict_));
  } else {
    RDFC_ASSIGN_OR_RETURN(prepared, containment::PrepareStored(w, dict_));
  }
  ++num_insertions_;

  auto finish_at = [&](RadixNode* node) -> InsertOutcome {
    // Dedup against entries already terminating at this vertex: identical
    // skeleton tokens do not imply identical queries once var-predicate
    // patterns differ, so compare the full canonical pattern sets.
    for (std::uint32_t id : node->stored_ids) {
      if (entries_[id].prepared.canonical.SamePatterns(prepared.canonical)) {
        entries_[id].external_ids.push_back(external_id);
        return InsertOutcome{id, false};
      }
    }
    const auto id = static_cast<std::uint32_t>(entries_.size());
    entries_.push_back(Entry{std::move(prepared), {external_id}, true});
    ++num_live_;
    node->stored_ids.push_back(id);
    return InsertOutcome{id, true};
  };

  if (prepared.tokens.empty()) {
    // No skeleton to index (every pattern has a variable predicate): keep on
    // the side list, dedup by canonical pattern set.
    for (std::uint32_t id : skeleton_free_) {
      if (entries_[id].prepared.canonical.SamePatterns(prepared.canonical)) {
        entries_[id].external_ids.push_back(external_id);
        return InsertOutcome{id, false};
      }
    }
    const auto id = static_cast<std::uint32_t>(entries_.size());
    entries_.push_back(Entry{std::move(prepared), {external_id}, true});
    ++num_live_;
    skeleton_free_.push_back(id);
    return InsertOutcome{id, true};
  }

  const std::vector<query::Token>& tokens = prepared.tokens;
  RadixNode* node = &root_;
  std::size_t i = 0;
  // Insert-side radix descent: every round consumes at least one token, so
  // at most |tokens| rounds.
  // NOLINTNEXTLINE(budget-poll-coverage)
  while (true) {
    if (i == tokens.size()) return finish_at(node);

    auto it = node->edges.find(tokens[i]);
    if (it == node->edges.end()) {
      // No edge starts with this token: append the whole remainder.
      RadixNode::Edge edge;
      edge.label.assign(tokens.begin() + static_cast<std::ptrdiff_t>(i),
                        tokens.end());
      edge.child = std::make_unique<RadixNode>();
      ++num_nodes_;
      RadixNode* child = edge.child.get();
      node->edges.emplace(tokens[i], std::move(edge));
      return finish_at(child);
    }

    RadixNode::Edge& edge = it->second;
    const std::size_t k = CommonPrefix(edge.label, tokens, i);
    RDFC_DCHECK(k > 0);
    if (k == edge.label.size()) {
      // Full edge match: descend.
      node = edge.child.get();
      i += k;
      continue;
    }

    // Partial match: split the edge at k.
    auto mid = std::make_unique<RadixNode>();
    ++num_nodes_;
    RadixNode::Edge tail;
    tail.label.assign(edge.label.begin() + static_cast<std::ptrdiff_t>(k),
                      edge.label.end());
    tail.child = std::move(edge.child);
    mid->edges.emplace(tail.label.front(), std::move(tail));
    edge.label.resize(k);
    edge.child = std::move(mid);
    node = edge.child.get();
    i += k;
    // Loop continues: either i == tokens.size() (the new mid node is the
    // query vertex) or a fresh edge is appended below mid.
  }
}

util::Status MvIndex::Remove(std::uint32_t stored_id) {
  RDFC_PARANOID_VALIDATE(this);
  if (stored_id >= entries_.size() || !entries_[stored_id].alive) {
    return util::Status::NotFound("no live entry with id " +
                                  std::to_string(stored_id));
  }
  Entry& entry = entries_[stored_id];
  entry.alive = false;
  --num_live_;

  auto detach = [stored_id](std::vector<std::uint32_t>* ids) {
    for (std::size_t i = 0; i < ids->size(); ++i) {
      if ((*ids)[i] == stored_id) {
        ids->erase(ids->begin() + static_cast<std::ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  };

  if (entry.prepared.tokens.empty()) {
    if (!detach(&skeleton_free_)) {
      return util::Status::Internal("side-list entry missing");
    }
    return util::Status::OK();
  }

  // Walk the entry's serialised path, recording the spine for pruning.
  const std::vector<query::Token>& tokens = entry.prepared.tokens;
  struct Hop {
    RadixNode* parent;
    query::Token first;  // key of the edge taken out of `parent`
  };
  std::vector<Hop> spine;
  RadixNode* node = &root_;
  std::size_t i = 0;
  // Remove-side spine descent: every hop consumes at least one token, so at
  // most |tokens| hops.
  // NOLINTNEXTLINE(budget-poll-coverage)
  while (i < tokens.size()) {
    auto it = node->edges.find(tokens[i]);
    if (it == node->edges.end()) {
      return util::Status::Internal("stored path missing from radix tree");
    }
    spine.push_back(Hop{node, it->first});
    node = it->second.child.get();
    i += it->second.label.size();
  }
  if (i != tokens.size() || !detach(&node->stored_ids)) {
    return util::Status::Internal("stored entry not found at its vertex");
  }

  // Prune upward: drop empty leaves, then re-merge unary non-query chains.
  for (auto hop = spine.rbegin(); hop != spine.rend(); ++hop) {
    auto edge_it = hop->parent->edges.find(hop->first);
    RDFC_DCHECK(edge_it != hop->parent->edges.end());
    RadixNode* child = edge_it->second.child.get();
    if (!child->is_query() && child->edges.empty()) {
      hop->parent->edges.erase(edge_it);
      --num_nodes_;
      continue;
    }
    if (!child->is_query() && child->edges.size() == 1) {
      // Merge the lone grandchild edge into this edge's label.
      auto grand_it = child->edges.begin();
      RadixNode::Edge grand = std::move(grand_it->second);
      edge_it->second.label.insert(edge_it->second.label.end(),
                                   grand.label.begin(), grand.label.end());
      edge_it->second.child = std::move(grand.child);
      --num_nodes_;
    }
    break;  // ancestors still have other content below them
  }
  return util::Status::OK();
}

ProbeResult MvIndex::FindContaining(const query::BgpQuery& q,
                                    const ProbeOptions& options) const {
  containment::PreparedProbe probe =
      containment::PrepareProbe(q, *dict_);
  return ContQueries(*this, probe, options);
}

ProbeResult MvIndex::FindContaining(const containment::PreparedProbe& probe,
                                    const ProbeOptions& options) const {
  return ContQueries(*this, probe, options);
}

ProbeResult MvIndex::ScanContaining(const query::BgpQuery& q,
                                    const ProbeOptions& options) const {
  containment::PreparedProbe probe =
      containment::PrepareProbe(q, *dict_);
  containment::CheckOptions check_options;
  check_options.verify = options.verify;
  check_options.max_mappings = options.max_mappings;
  check_options.max_np_steps = options.max_np_steps;
  check_options.budget = options.budget;

  ProbeResult result;
  for (std::uint32_t id = 0; id < entries_.size(); ++id) {
    if (!entries_[id].alive) continue;
    // Mirrors the degradation contract of the tree walks: once the budget
    // is spent, entries not yet checked were never filtered, so the scan is
    // reported as filter-incomplete rather than pretending they missed.
    if (options.budget != nullptr && options.budget->exhausted()) {
      result.filter_complete = false;
      break;
    }
    containment::CheckOutcome outcome = containment::CheckPrepared(
        probe, entries_[id].prepared, *dict_, check_options);
    if (outcome.filter_passed) {
      ++result.candidates;
      if (outcome.needed_np) ++result.np_checks;
    }
    const bool hit = options.verify ? outcome.contained : outcome.filter_passed;
    if (hit) {
      result.contained.push_back(ProbeMatch{id, std::move(outcome)});
    } else if (options.verify && !outcome.complete) {
      result.unverified.push_back(id);
    }
  }
  return result;
}

std::vector<std::uint32_t> MvIndex::FindContainedBy(
    const query::BgpQuery& q) {
  std::vector<std::uint32_t> out;
  auto stored_q = containment::PrepareStored(q, dict_);
  if (!stored_q.ok()) return out;
  for (std::uint32_t id = 0; id < entries_.size(); ++id) {
    if (!entries_[id].alive) continue;
    const containment::PreparedProbe probe =
        containment::PrepareProbe(entries_[id].prepared.canonical, *dict_);
    if (containment::CheckPrepared(probe, *stored_q, *dict_, {}).contained) {
      out.push_back(id);
    }
  }
  return out;
}

util::Status MvIndex::MergeFrom(const MvIndex& other) {
  if (other.dict_ != dict_) {
    return util::Status::InvalidArgument(
        "MergeFrom requires indexes sharing one dictionary");
  }
  for (std::uint32_t id = 0; id < other.entries_.size(); ++id) {
    if (!other.entries_[id].alive) continue;
    for (std::uint64_t external_id : other.entries_[id].external_ids) {
      RDFC_ASSIGN_OR_RETURN(InsertOutcome outcome,
                            Insert(other.entries_[id].prepared.canonical,
                                   external_id));
      (void)outcome;
    }
  }
  return util::Status::OK();
}

RadixStats MvIndex::ComputeStats() const { return ComputeRadixStats(root_); }

}  // namespace index
}  // namespace rdfc
