#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "query/bgp_query.h"
#include "rdf/dictionary.h"
#include "util/macros.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace rdfc {
namespace index {

/// When the journal makes an appended record durable (DESIGN.md
/// "Durability").  Every policy flushes to the kernel on append (fflush), so
/// a SIGKILL'd process never loses an acknowledged record under any policy;
/// fsync only widens the guarantee to power loss.
enum class JournalFsync : std::uint8_t {
  kAlways = 0,  ///< fsync after every append (power-loss durable per batch)
  kGroup = 1,   ///< fsync at most once per group window (amortised)
  kOff = 2,     ///< never fsync (process-crash durable only)
};

struct JournalOptions {
  std::string path;
  JournalFsync fsync = JournalFsync::kGroup;
  /// kGroup: minimum microseconds between fsyncs.  Appends inside the window
  /// flush to the kernel but skip the disk barrier.  Keep the window well
  /// above the device's barrier latency (a few ms on commodity ext4) —
  /// a smaller window makes the flusher run barriers back-to-back, which
  /// stalls the writer's appends against the filesystem journal for no
  /// added durability.
  std::uint64_t group_window_micros = 10000;
};

/// One logical index mutation inside a journalled batch.  Adds carry the
/// view's full query with self-contained lexical terms, so replay re-interns
/// into whatever dictionary the restored process has — journal records never
/// reference dictionary ids that may not survive a restart.
struct JournalOp {
  enum class Kind : std::uint8_t { kAdd = 1, kRemove = 2 };
  Kind kind = Kind::kAdd;
  std::uint64_t view_id = 0;
  query::BgpQuery view;  // meaningful for kAdd only
};

/// One acknowledged Publish batch: a dense sequence number (strictly
/// monotone per journal, surviving truncation via the header base), the
/// snapshot version the batch produced, and the staged ops in stage order.
struct JournalBatch {
  std::uint64_t sequence = 0;
  std::uint64_t version = 0;
  std::vector<JournalOp> ops;
};

struct JournalStats {
  std::uint64_t records_appended = 0;
  std::uint64_t fsyncs = 0;
  std::uint64_t records_replayed = 0;
  std::uint64_t ops_replayed = 0;
  std::uint64_t truncated_bytes = 0;  // torn/corrupt tail dropped at Open
  std::uint64_t last_sequence = 0;    // highest sequence appended or replayed
  /// Replay stopped early (I/O error or `journal.replay` failpoint) without
  /// truncating: the file still holds unreplayed acknowledged records, so
  /// Append is refused until a clean re-open replays them.
  bool degraded = false;
};

/// Append-only write-ahead journal for the delta tier (magic "RDFCWJ01").
///
/// File layout:
///
///   header   magic[8] + u64 base_sequence + u64 FNV-1a(magic+base)
///   record*  u32 payload_len + u64 FNV-1a(payload) + payload
///
/// where payload = u64 sequence (strictly base+k for the k-th record), u64
/// version, u32 num_ops, then each op as u8 kind + u64 view_id, adds
/// followed by u32 num_triples and each triple as three terms of
/// u8 TermKind + u32 len + lexical bytes.
///
/// Open() scans the file, replaying every record whose length, checksum, and
/// sequence check out through the caller's replay callback; the first torn
/// or corrupt record ends the scan and the file is physically truncated to
/// the last valid byte — a crash mid-append can only cost bytes that were
/// never acknowledged.  A corrupt header resets the journal to a fresh one
/// (base 0): the header is only rewritten by Truncate(), whose caller has
/// already committed a covering tiered image.
///
/// Append() is transactional: on any write/fsync failure the file is
/// restored to its pre-append length, so a record either becomes fully
/// replayable or leaves no trace.
///
/// Threading: the public API is NOT thread-safe — the IndexManager
/// serializes all calls under its writer lock.  kGroup mode runs an
/// internal flusher thread that takes the disk barrier off the append
/// path: appends mark the tail dirty (the bytes are already fflushed to
/// the kernel) and the flusher fsyncs the fd at most once per group
/// window.  The flusher touches only the raw fd (fsync is a kernel-side
/// barrier on whatever has been flushed, safe beside concurrent writes);
/// all FILE* operations stay on the writer side.
class WriteAheadJournal {
 public:
  using ReplayFn = std::function<util::Status(const JournalBatch&)>;

  RDFC_DISALLOW_COPY_AND_ASSIGN(WriteAheadJournal);
  ~WriteAheadJournal();

  /// Opens (creating if absent) the journal at `options.path`, replaying
  /// every intact record through `replay` in sequence order.  Add ops are
  /// re-interned into `dict` while parsing (writer-side dictionary calls;
  /// the caller holds its mutation lock).  Returns the journal positioned
  /// for appending after the last valid record.
  [[nodiscard]] static util::Result<std::unique_ptr<WriteAheadJournal>> Open(
      const JournalOptions& options, rdf::TermDictionary* dict,
      const ReplayFn& replay);

  /// Appends one batch record and makes it durable per the fsync policy.
  /// `batch.sequence` must equal next_sequence().
  [[nodiscard]] util::Status Append(const JournalBatch& batch,
                                    const rdf::TermDictionary& dict);

  /// Drops every record: called after a tiered image covering all journalled
  /// batches has committed.  Rewrites the header with base_sequence =
  /// last_sequence so sequence numbers stay monotone across truncation.
  [[nodiscard]] util::Status Truncate();

  /// Forces an fsync regardless of policy (e.g. before a clean shutdown).
  [[nodiscard]] util::Status Sync();

  /// Writer-side counters only; group-commit fsyncs from the flusher
  /// thread are NOT folded in — use stats_snapshot() for the full picture.
  const JournalStats& stats() const { return stats_; }
  /// stats() plus the flusher thread's group-commit fsync count.
  JournalStats stats_snapshot() const;
  std::uint64_t next_sequence() const { return stats_.last_sequence + 1; }
  const std::string& path() const { return options_.path; }

 private:
  WriteAheadJournal(JournalOptions options, std::FILE* file);

  [[nodiscard]] util::Status WriteHeader(std::uint64_t base_sequence);
  /// Scans + replays the existing file; truncates the torn tail.  Sets
  /// stats_.degraded (and leaves the file intact) when replay stops early.
  [[nodiscard]] util::Status ReplayAndRecover(rdf::TermDictionary* dict,
                                              const ReplayFn& replay);
  /// Restores the file to `length` bytes after a failed append.
  void RollBackTo(std::uint64_t length);
  /// kGroup: spawns the background group-commit flusher.
  void StartFlusher();
  void FlusherLoop();

  JournalOptions options_;
  std::FILE* file_;  // append-positioned; owned; FILE* ops writer-side only
  int fd_ = -1;      // cached fileno(file_); the flusher's only handle
  std::uint64_t end_offset_ = 0;  // bytes of header + valid records
  JournalStats stats_;

  // Deferred group commit (kGroup): the writer marks the tail dirty and the
  // flusher pays the fsync at most once per group window, off the append
  // path.  A record is still kernel-durable the moment Append returns.
  std::unique_ptr<util::ThreadPool> flusher_;  // 1 thread; kGroup only
  mutable util::Mutex flush_mu_;
  util::CondVar flush_cv_;
  bool flush_dirty_ RDFC_GUARDED_BY(flush_mu_) = false;
  bool flush_stop_ RDFC_GUARDED_BY(flush_mu_) = false;
  std::uint64_t group_fsyncs_ RDFC_GUARDED_BY(flush_mu_) = 0;
};

}  // namespace index
}  // namespace rdfc
