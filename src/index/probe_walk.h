#pragma once

#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "containment/fgraph_matcher.h"
#include "containment/pipeline.h"
#include "index/mv_index.h"
#include "rdf/dictionary.h"

namespace rdfc {
namespace index {
namespace internal {

/// Shared pieces of the Algorithm-3 probe walk, used by both tree layouts:
/// the pointer Radix tree (cont_queries.cc) and the frozen flat form
/// (frozen_index.cc).  Keeping candidate enumeration, label advancement, and
/// the Phase-2 decision in one place is what makes the two walks provably
/// compute the same ProbeResult — only the edge-dispatch structure differs.

/// σ_w sets accumulated per candidate stored id during a walk.  Every tree
/// vertex is reached at most once per probe (states are merged per edge
/// before descending) and stored ids are unique across vertices (invariant
/// T5), so ids never repeat — a flat append-only vector beats a hash map on
/// both walk and decide cost.
using CandidateSigmas =
    std::vector<std::pair<std::uint32_t, std::vector<containment::MatchState>>>;

/// Appends every first token the state could legally consume next.
///
/// Naively, every state at a tree vertex would be tested against every
/// outgoing edge.  Instead, the current witness vertex of a state determines
/// *exactly* which first tokens an edge could start with and still match:
///
///   - Open / Close / Separator structural tokens;
///   - at the root: the anchor ?x1, or a constant belonging to the state's
///     start class (constants anchor many real views);
///   - after a separator: a re-anchor on any already-bound variable, the
///     next fresh canonical variable, or any probe constant;
///   - pairs: for each witness edge (pred, dir, target) incident to the
///     current vertex — the predicate-ordered serialisation guarantees there
///     are no other candidates — with the token's term being either the next
///     fresh canonical variable, an already-bound variable mapped to
///     `target`, or a constant member of `target`.
///
/// Canonical-variable renaming (optimisation II) is what makes the
/// fresh-variable token predictable: after binding m variables the next new
/// variable is always ?x(m+1).
void CollectCandidateTokens(const containment::FGraphView& view,
                            const rdf::TermDictionary& dict,
                            const containment::MatchState& st,
                            std::vector<query::Token>* out);

/// Drives one state through label[from..len), forking on separator anchors
/// (Section 5.2 multi-component entries).  Survivors are appended to `out`;
/// `states_explored` counts matcher steps (the ProbeResult counter).
void AdvanceLabel(const containment::FGraphView& view,
                  const rdf::TermDictionary& dict, const query::Token* label,
                  std::size_t len, std::size_t from,
                  containment::MatchState state,
                  std::vector<containment::MatchState>* out,
                  std::size_t* states_explored);

/// Phase 2 of a probe, shared verbatim by both layouts: decides every
/// candidate via the witness-filter σ_w sets the walk produced, then checks
/// the skeleton-free side list directly.  `Index` provides `entry(id)` and
/// `skeleton_free_entries()` (MvIndex and FrozenMvIndex both do).
template <typename Index>
void DecideCandidates(const Index& index,
                      const containment::PreparedProbe& probe,
                      const rdf::TermDictionary& dict,
                      const ProbeOptions& options,
                      CandidateSigmas* candidate_sigmas, ProbeResult* result) {
  containment::CheckOptions check_options;
  check_options.verify = options.verify;
  check_options.max_mappings = options.max_mappings;
  check_options.max_np_steps = options.max_np_steps;
  check_options.budget = options.budget;

  for (auto& [stored_id, sigmas] : *candidate_sigmas) {
    ++result->candidates;
    // Once the budget is spent, remaining filter survivors go straight to
    // the unverified list — their σ_w sets are genuine (the walk only
    // records fully-matched states) but no verdict was reached.
    if (options.budget != nullptr && options.budget->exhausted()) {
      result->unverified.push_back(stored_id);
      continue;
    }
    containment::CheckOutcome outcome = containment::DecideFromSigmas(
        probe, index.entry(stored_id), sigmas, dict, check_options);
    if (outcome.needed_np) ++result->np_checks;
    const bool hit =
        options.verify ? outcome.contained : outcome.filter_passed;
    if (hit) {
      result->contained.push_back(ProbeMatch{stored_id, std::move(outcome)});
    } else if (options.verify && !outcome.complete) {
      result->unverified.push_back(stored_id);
    }
  }

  // Entries with no indexable skeleton (all patterns var-predicate) are
  // checked directly; their filter is vacuous (single empty σ_w).  A sound
  // constant-occurrence pre-filter skips the NP check for the common case
  // of entries like (?x, ?p, <const>) whose constant the probe never
  // mentions: a containment mapping fixes constants, so a constant subject
  // (object) of W must literally occur as a subject (object) in the probe.
  std::unordered_set<rdf::TermId> probe_subjects, probe_objects;
  if (!index.skeleton_free_entries().empty()) {
    for (const rdf::Triple& t : probe.patterns.patterns()) {
      probe_subjects.insert(t.s);
      probe_objects.insert(t.o);
    }
  }
  for (std::uint32_t id : index.skeleton_free_entries()) {
    const containment::PreparedStored& stored = index.entry(id);
    bool possible = !probe.patterns.empty();
    for (const rdf::Triple& t : stored.var_pred_patterns) {
      if (dict.IsConstant(t.s) && !probe_subjects.count(t.s)) {
        possible = false;
        break;
      }
      if (dict.IsConstant(t.o) && !probe_objects.count(t.o)) {
        possible = false;
        break;
      }
    }
    if (!possible) continue;
    ++result->candidates;
    if (options.budget != nullptr && options.budget->exhausted()) {
      result->unverified.push_back(id);
      continue;
    }
    std::vector<containment::MatchState> empty_sigma(1);
    containment::CheckOutcome outcome = containment::DecideFromSigmas(
        probe, stored, empty_sigma, dict, check_options);
    if (outcome.needed_np) ++result->np_checks;
    const bool hit =
        options.verify ? outcome.contained : outcome.filter_passed;
    if (hit) {
      result->contained.push_back(ProbeMatch{id, std::move(outcome)});
    } else if (options.verify && !outcome.complete) {
      result->unverified.push_back(id);
    }
  }
}

}  // namespace internal
}  // namespace index
}  // namespace rdfc
