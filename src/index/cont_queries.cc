#include "index/cont_queries.h"

#include <map>
#include <unordered_map>
#include <unordered_set>

#include "util/timer.h"

namespace rdfc {
namespace index {

namespace {

using containment::BindAnchor;
using containment::FGraphView;
using containment::MatchState;
using containment::Step;
using containment::StepResult;

/// Algorithm 3 with the paper's optimisations I and III made concrete.
///
/// Naively, every state at a tree vertex would be tested against every
/// outgoing edge.  Instead, the current witness vertex of a state determines
/// *exactly* which first tokens an edge could start with and still match:
///
///   - Open / Close / Separator structural tokens;
///   - at the root: the anchor ?x1, or a constant belonging to the state's
///     start class (constants anchor many real views);
///   - after a separator: a re-anchor on any already-bound variable, the
///     next fresh canonical variable, or any probe constant;
///   - pairs: for each witness edge (pred, dir, target) incident to the
///     current vertex — the predicate-ordered serialisation guarantees there
///     are no other candidates — with the token's term being either the next
///     fresh canonical variable, an already-bound variable mapped to
///     `target`, or a constant member of `target`.
///
/// Each candidate is a single hash lookup in the vertex's edge map, so a
/// probe's cost tracks its own size and the matched region of the tree,
/// never the index's total fan-out.  Canonical-variable renaming
/// (optimisation II) is what makes the fresh-variable token predictable:
/// after binding m variables the next new variable is always ?x(m+1).
class Walker {
 public:
  Walker(const MvIndex& index, const containment::PreparedProbe& probe,
         const ProbeOptions& options)
      : index_(index), probe_(probe), options_(options),
        dict_(&index.dict()) {}

  ProbeResult Run() {
    // Theorem 4.2: start the walk once per witness class of the probe.
    util::Timer timer;
    std::vector<MatchState> initial;
    initial.reserve(probe_.view.num_vertices());
    for (std::uint32_t cls = 0; cls < probe_.view.num_vertices(); ++cls) {
      initial.push_back(MatchState::AtAnchor(cls));
    }
    if (!initial.empty()) {
      Walk(index_.root(), std::move(initial));
    }
    result_.filter_micros = timer.ElapsedMicros();
    timer.Restart();
    Decide();
    result_.verify_micros = timer.ElapsedMicros();
    return std::move(result_);
  }

 private:
  /// Appends every first token the state could legally consume next.
  void CollectCandidates(const MatchState& st,
                         std::vector<query::Token>* out) {
    out->push_back(query::Token::Separator());
    if (st.v == MatchState::kNoVertex) {
      // Awaiting a component anchor (right after a separator).
      const auto m = static_cast<std::uint32_t>(st.sigma.size());
      // CanonicalVariableIfKnown keeps the walk strictly read-only: if ?x(m+1)
      // was never interned, no stored query has that many variables and no
      // edge can carry it.
      const rdf::TermId fresh_anchor = dict_->CanonicalVariableIfKnown(m + 1);
      if (fresh_anchor != rdf::kNullTerm) {
        out->push_back(query::Token::Anchor(fresh_anchor));
      }
      for (const auto& [var, cls] : st.sigma) {
        (void)cls;
        out->push_back(query::Token::Anchor(var));
      }
      for (std::uint32_t cls = 0; cls < probe_.view.num_vertices(); ++cls) {
        for (rdf::TermId c : probe_.view.ConstantsIn(cls)) {
          out->push_back(query::Token::Anchor(c));
        }
      }
      return;
    }
    out->push_back(query::Token::Open());
    if (!st.path_stack.empty()) out->push_back(query::Token::Close());
    // Root anchor (only the root can start with a stream-initial anchor;
    // one extra hash miss elsewhere is harmless).
    const auto m = static_cast<std::uint32_t>(st.sigma.size());
    const rdf::TermId fresh = dict_->CanonicalVariableIfKnown(m + 1);
    if (st.sigma.empty()) {
      if (fresh != rdf::kNullTerm) {
        out->push_back(query::Token::Anchor(fresh));
      }
      for (rdf::TermId c : probe_.view.ConstantsIn(st.v)) {
        out->push_back(query::Token::Anchor(c));
      }
    }
    for (const FGraphView::AdjEdge& edge : probe_.view.Adjacency(st.v)) {
      if (fresh != rdf::kNullTerm) {
        out->push_back(query::Token::Pair(edge.pred, fresh, edge.inverse));
      }
      for (const auto& [var, cls] : st.sigma) {
        if (cls == edge.target) {
          out->push_back(query::Token::Pair(edge.pred, var, edge.inverse));
        }
      }
      for (rdf::TermId c : probe_.view.ConstantsIn(edge.target)) {
        out->push_back(query::Token::Pair(edge.pred, c, edge.inverse));
      }
    }
  }

  void Walk(const RadixNode& node, std::vector<MatchState> states) {
    if (node.is_query()) {
      for (std::uint32_t id : node.stored_ids) {
        auto& sigmas = candidate_sigmas_[id];
        sigmas.insert(sigmas.end(), states.begin(), states.end());
      }
    }
    if (node.edges.empty()) return;

    // Group surviving states by the edge they advance along; each candidate
    // token is one hash probe into the edge map (optimisation III).
    std::map<const RadixNode::Edge*, std::vector<MatchState>> by_edge;
    std::vector<query::Token> candidates;
    for (const MatchState& st : states) {
      candidates.clear();
      CollectCandidates(st, &candidates);
      for (const query::Token& token : candidates) {
        auto it = node.edges.find(token);
        if (it == node.edges.end()) continue;
        const RadixNode::Edge& edge = it->second;
        MatchState copy = st;  // the paper's CopyOf
        AdvanceLabel(edge.label, 0, std::move(copy), &by_edge[&edge]);
      }
    }
    for (auto& [edge, survivors] : by_edge) {
      if (!survivors.empty()) Walk(*edge->child, std::move(survivors));
    }
  }

  /// Drives one state through label[from..], forking on separator anchors
  /// (Section 5.2 multi-component entries).  Survivors are appended to out.
  void AdvanceLabel(const std::vector<query::Token>& label, std::size_t from,
                    MatchState state, std::vector<MatchState>* out) {
    for (std::size_t i = from; i < label.size(); ++i) {
      ++result_.states_explored;
      const StepResult r = Step(probe_.view, *dict_, label[i], &state);
      if (r == StepResult::kFail) return;
      if (r == StepResult::kNeedsFork) {
        for (std::uint32_t cls = 0; cls < probe_.view.num_vertices(); ++cls) {
          MatchState forked = state;
          if (BindAnchor(probe_.view, *dict_, label[i], cls, &forked)) {
            AdvanceLabel(label, i + 1, std::move(forked), out);
          }
        }
        return;
      }
    }
    out->push_back(std::move(state));
  }

  void Decide() {
    containment::CheckOptions check_options;
    check_options.verify = options_.verify;
    check_options.max_mappings = options_.max_mappings;
    check_options.max_np_steps = options_.max_np_steps;

    for (auto& [stored_id, sigmas] : candidate_sigmas_) {
      ++result_.candidates;
      containment::CheckOutcome outcome = containment::DecideFromSigmas(
          probe_, index_.entry(stored_id), sigmas, *dict_, check_options);
      if (outcome.needed_np) ++result_.np_checks;
      const bool hit =
          options_.verify ? outcome.contained : outcome.filter_passed;
      if (hit) {
        result_.contained.push_back(ProbeMatch{stored_id, std::move(outcome)});
      }
    }

    // Entries with no indexable skeleton (all patterns var-predicate) are
    // checked directly; their filter is vacuous (single empty σ_w).  A sound
    // constant-occurrence pre-filter skips the NP check for the common case
    // of entries like (?x, ?p, <const>) whose constant the probe never
    // mentions: a containment mapping fixes constants, so a constant subject
    // (object) of W must literally occur as a subject (object) in the probe.
    std::unordered_set<rdf::TermId> probe_subjects, probe_objects;
    if (!index_.skeleton_free_entries().empty()) {
      for (const rdf::Triple& t : probe_.patterns.patterns()) {
        probe_subjects.insert(t.s);
        probe_objects.insert(t.o);
      }
    }
    for (std::uint32_t id : index_.skeleton_free_entries()) {
      const containment::PreparedStored& stored = index_.entry(id);
      bool possible = !probe_.patterns.empty();
      for (const rdf::Triple& t : stored.var_pred_patterns) {
        if (dict_->IsConstant(t.s) && !probe_subjects.count(t.s)) {
          possible = false;
          break;
        }
        if (dict_->IsConstant(t.o) && !probe_objects.count(t.o)) {
          possible = false;
          break;
        }
      }
      if (!possible) continue;
      ++result_.candidates;
      std::vector<MatchState> empty_sigma(1);
      containment::CheckOutcome outcome = containment::DecideFromSigmas(
          probe_, stored, empty_sigma, *dict_, check_options);
      if (outcome.needed_np) ++result_.np_checks;
      const bool hit =
          options_.verify ? outcome.contained : outcome.filter_passed;
      if (hit) {
        result_.contained.push_back(ProbeMatch{id, std::move(outcome)});
      }
    }
  }

  const MvIndex& index_;
  const containment::PreparedProbe& probe_;
  const ProbeOptions& options_;
  const rdf::TermDictionary* dict_;
  std::unordered_map<std::uint32_t, std::vector<MatchState>>
      candidate_sigmas_;
  ProbeResult result_;
};

}  // namespace

ProbeResult ContQueries(const MvIndex& index,
                        const containment::PreparedProbe& probe,
                        const ProbeOptions& options) {
  Walker walker(index, probe, options);
  return walker.Run();
}

}  // namespace index
}  // namespace rdfc
