#include "index/cont_queries.h"

#include <map>

#include "index/probe_walk.h"
#include "util/timer.h"

namespace rdfc {
namespace index {

namespace {

using containment::MatchState;

/// Algorithm 3 over the pointer Radix tree, with the paper's optimisations I
/// and III made concrete: each candidate token (internal::
/// CollectCandidateTokens) is a single hash probe into the vertex's edge
/// map, so a probe's cost tracks its own size and the matched region of the
/// tree, never the index's total fan-out.  The frozen layout
/// (frozen_index.cc) runs the same walk over sorted flat arrays.
class Walker {
 public:
  Walker(const MvIndex& index, const containment::PreparedProbe& probe,
         const ProbeOptions& options)
      : index_(index), probe_(probe), options_(options),
        dict_(&index.dict()) {}

  ProbeResult Run() {
    // Theorem 4.2: start the walk once per witness class of the probe.
    util::Timer timer;
    std::vector<MatchState> initial;
    initial.reserve(probe_.view.num_vertices());
    for (std::uint32_t cls = 0; cls < probe_.view.num_vertices(); ++cls) {
      initial.push_back(MatchState::AtAnchor(cls));
    }
    if (!initial.empty()) {
      Walk(index_.root(), std::move(initial));
    }
    result_.filter_micros = timer.ElapsedMicros();
    timer.Restart();
    internal::DecideCandidates(index_, probe_, *dict_, options_,
                               &candidate_sigmas_, &result_);
    result_.verify_micros = timer.ElapsedMicros();
    return std::move(result_);
  }

 private:
  void Walk(const RadixNode& node, std::vector<MatchState> states) {
    // Budget poll per tree vertex: stopping between vertices keeps every
    // recorded candidate a genuine filter survivor (states only reach a
    // vertex after fully consuming the labels leading to it).
    if (options_.budget != nullptr && options_.budget->Exhausted()) {
      result_.filter_complete = false;
      return;
    }
    if (node.is_query()) {
      for (std::uint32_t id : node.stored_ids) {
        candidate_sigmas_.emplace_back(id, states);
      }
    }
    if (node.edges.empty()) return;

    // Group surviving states by the edge they advance along; each candidate
    // token is one hash probe into the edge map (optimisation III).
    std::map<const RadixNode::Edge*, std::vector<MatchState>> by_edge;
    std::vector<query::Token> candidates;
    for (const MatchState& st : states) {
      candidates.clear();
      internal::CollectCandidateTokens(probe_.view, *dict_, st, &candidates);
      // Covered by the per-vertex budget poll above; candidate tokens per
      // state are a small constant (optimisation III).
      // NOLINTNEXTLINE(budget-poll-coverage)
      for (const query::Token& token : candidates) {
        auto it = node.edges.find(token);
        if (it == node.edges.end()) continue;
        const RadixNode::Edge& edge = it->second;
        MatchState copy = st;  // the paper's CopyOf
        internal::AdvanceLabel(probe_.view, *dict_, edge.label.data(),
                               edge.label.size(), 0, std::move(copy),
                               &by_edge[&edge], &result_.states_explored);
      }
    }
    for (auto& [edge, survivors] : by_edge) {
      if (!survivors.empty()) Walk(*edge->child, std::move(survivors));
    }
  }

  const MvIndex& index_;
  const containment::PreparedProbe& probe_;
  const ProbeOptions& options_;
  const rdf::TermDictionary* dict_;
  internal::CandidateSigmas candidate_sigmas_;
  ProbeResult result_;
};

}  // namespace

ProbeResult ContQueries(const MvIndex& index,
                        const containment::PreparedProbe& probe,
                        const ProbeOptions& options) {
  Walker walker(index, probe, options);
  return walker.Run();
}

}  // namespace index
}  // namespace rdfc
