#pragma once

#include <cstddef>
#include <limits>

#include "index/frozen_index.h"
#include "index/mv_index.h"
#include "index/radix_node.h"
#include "util/status.h"

namespace rdfc {
namespace index {

/// Structural invariants of a radix (sub)tree, checked recursively:
///
///   T1  every edge label is non-empty (no empty-edge chains);
///   T2  every edge is keyed in its parent's hash map by the label's first
///       token (optimisation III — the probe walk relies on this);
///   T3  sibling edges start with distinct tokens (key disjointness; the
///       hash map enforces it for the keys, T2 extends it to the labels);
///   T4  no non-root vertex is a non-query unary pass-through: an interior
///       vertex either stores a query (L_Q) or branches (>= 2 edges), and a
///       leaf always stores a query — otherwise insertion/removal failed to
///       merge or prune it;
///   T5  stored ids are strictly below `num_entries` and unique across the
///       whole tree (a dangling or doubled terminal bit corrupts probe
///       results silently).
///
/// `num_entries` defaults to "unknown" (no T5 range check).  Returns OK or an
/// Internal Status naming the violated invariant and the path depth.
[[nodiscard]] util::Status ValidateRadixTree(
    const RadixNode& root,
    std::size_t num_entries = std::numeric_limits<std::size_t>::max());

/// Whole-index validation: ValidateRadixTree(root, num_entries) plus the
/// cross-layer invariants tying the tree to the entry table:
///
///   M1  every stored id in the tree or on the skeleton-free side list refers
///       to a live entry, and each live entry appears exactly once;
///   M2  prefix soundness: walking a live entry's serialised tokens from the
///       root consumes whole edge labels and ends exactly at the vertex that
///       stores the entry's id;
///   M3  each entry's token stream passes query::ValidateSerialisation, and
///       parsing it back (query::ParseSerialisation) reproduces the entry's
///       canonical skeleton — the Serialise ∘ Parse identity the paper's
///       Theorem 4.2 tacitly assumes;
///   M4  side-list entries are exactly the live entries with no skeleton;
///   M5  the incremental num_nodes()/num_live_entries() counters agree with
///       a full recount.
///
/// Cost: O(index size); meant for tests, rdfc_fuzz, and RDFC_PARANOID_CHECKS
/// builds, not for production mutation paths.
[[nodiscard]] util::Status ValidateMvIndex(const MvIndex& index);

/// Structural invariants of a frozen index, mirroring T1–T5 on the flat
/// layout (plus the M1/M2/M4-style cross-layer ties to the entry table):
///
///   F1  the node spans tile the pools exactly in BFS order: first_edge,
///       first_child, stored_begin, and the label offsets are each the
///       running sum of the spans before them, and the totals equal the
///       pool sizes (children-of-a-node adjacency is a special case);
///   F2  every label is non-empty and every dispatch token equals its
///       label's first token in the pool (T1 + T2);
///   F3  each node's dispatch span is strictly ascending under
///       FrozenTokenLess — distinct first tokens, binary-searchable (T3);
///   F4  every non-root node stores a query or branches (>= 2 edges), and
///       leaves store queries (T4);
///   F5  stored ids are in range, alive, and unique across the structure;
///       the skeleton-free side list holds exactly the live entries with no
///       skeleton; live counts agree; and every live skeleton entry's token
///       stream walks the flat arrays to a node that stores its id (T5 +
///       the M1/M2/M4 mirrors).
///
/// Cost: O(index size); for tests, rdfc_fuzz, and LoadFrozenIndex.
[[nodiscard]] util::Status ValidateFrozen(const FrozenMvIndex& frozen);

}  // namespace index
}  // namespace rdfc
