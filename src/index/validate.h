#pragma once

#include <cstddef>
#include <limits>

#include "index/mv_index.h"
#include "index/radix_node.h"
#include "util/status.h"

namespace rdfc {
namespace index {

/// Structural invariants of a radix (sub)tree, checked recursively:
///
///   T1  every edge label is non-empty (no empty-edge chains);
///   T2  every edge is keyed in its parent's hash map by the label's first
///       token (optimisation III — the probe walk relies on this);
///   T3  sibling edges start with distinct tokens (key disjointness; the
///       hash map enforces it for the keys, T2 extends it to the labels);
///   T4  no non-root vertex is a non-query unary pass-through: an interior
///       vertex either stores a query (L_Q) or branches (>= 2 edges), and a
///       leaf always stores a query — otherwise insertion/removal failed to
///       merge or prune it;
///   T5  stored ids are strictly below `num_entries` and unique across the
///       whole tree (a dangling or doubled terminal bit corrupts probe
///       results silently).
///
/// `num_entries` defaults to "unknown" (no T5 range check).  Returns OK or an
/// Internal Status naming the violated invariant and the path depth.
[[nodiscard]] util::Status ValidateRadixTree(
    const RadixNode& root,
    std::size_t num_entries = std::numeric_limits<std::size_t>::max());

/// Whole-index validation: ValidateRadixTree(root, num_entries) plus the
/// cross-layer invariants tying the tree to the entry table:
///
///   M1  every stored id in the tree or on the skeleton-free side list refers
///       to a live entry, and each live entry appears exactly once;
///   M2  prefix soundness: walking a live entry's serialised tokens from the
///       root consumes whole edge labels and ends exactly at the vertex that
///       stores the entry's id;
///   M3  each entry's token stream passes query::ValidateSerialisation, and
///       parsing it back (query::ParseSerialisation) reproduces the entry's
///       canonical skeleton — the Serialise ∘ Parse identity the paper's
///       Theorem 4.2 tacitly assumes;
///   M4  side-list entries are exactly the live entries with no skeleton;
///   M5  the incremental num_nodes()/num_live_entries() counters agree with
///       a full recount.
///
/// Cost: O(index size); meant for tests, rdfc_fuzz, and RDFC_PARANOID_CHECKS
/// builds, not for production mutation paths.
[[nodiscard]] util::Status ValidateMvIndex(const MvIndex& index);

}  // namespace index
}  // namespace rdfc
