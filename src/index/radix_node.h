#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "query/serialisation.h"

namespace rdfc {
namespace index {

/// One vertex of the mv-index Radix tree.  Edges carry non-empty token-list
/// labels; a vertex "corresponds to an actual query inserted into M" (the
/// paper's L_Q flag) iff `stored_ids` is non-empty.  Several stored entries
/// can share one vertex: queries whose skeleton serialisations coincide but
/// whose variable-predicate patterns differ (Section 5.2).
///
/// Per optimisation III, edges are hash-indexed by their first token, so
/// both insertion and the ContQueries walk access the relevant edge in O(1).
struct RadixNode {
  struct Edge {
    std::vector<query::Token> label;
    std::unique_ptr<RadixNode> child;
  };

  std::unordered_map<query::Token, Edge, query::TokenHash> edges;
  std::vector<std::uint32_t> stored_ids;

  bool is_query() const { return !stored_ids.empty(); }
};

/// Aggregate structural statistics of the tree rooted at `node` (the paper
/// reports "intermediate vertices" for the combined workload index).
struct RadixStats {
  std::size_t num_nodes = 0;        // including the root
  std::size_t num_edges = 0;
  std::size_t num_query_nodes = 0;  // nodes with L_Q = true
  std::size_t total_label_tokens = 0;
  std::size_t max_depth = 0;        // in edges
};

RadixStats ComputeRadixStats(const RadixNode& root);

}  // namespace index
}  // namespace rdfc
