#pragma once

#include <memory>
#include <string>

#include "index/mv_index.h"
#include "rdf/dictionary.h"
#include "util/status.h"

namespace rdfc {
namespace index {

/// Binary snapshot of an mv-index.
///
/// Format (little-endian, versioned magic header, trailing FNV checksum):
/// the term dictionary in id order, followed by every *live* stored entry as
/// its canonical triple list plus external ids.  Loading re-runs the
/// deterministic preparation pipeline (serialisation + radix insertion), so
/// the rebuilt tree is structurally identical to the saved one — the file
/// stays small (no tree encoding) and can never desynchronise from the
/// insertion logic.
///
/// Dead (Remove()d) entries are not persisted; stored ids are therefore NOT
/// stable across a save/load cycle — external ids are the durable handles.
[[nodiscard]] util::Status SaveIndex(const MvIndex& index, const std::string& path);

/// Loads a snapshot.  `dict` must be freshly constructed (terms are
/// re-interned in file order); the returned index points at it.
[[nodiscard]] util::Result<std::unique_ptr<MvIndex>> LoadIndex(const std::string& path,
                                                 rdf::TermDictionary* dict);

}  // namespace index
}  // namespace rdfc
