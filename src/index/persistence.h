#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "index/frozen_index.h"
#include "index/mv_index.h"
#include "rdf/dictionary.h"
#include "util/status.h"

namespace rdfc {
namespace index {

/// Binary snapshot of an mv-index.
///
/// Format (little-endian, versioned magic header, trailing FNV checksum):
/// the term dictionary in id order, followed by every *live* stored entry as
/// its canonical triple list plus external ids.  Loading re-runs the
/// deterministic preparation pipeline (serialisation + radix insertion), so
/// the rebuilt tree is structurally identical to the saved one — the file
/// stays small (no tree encoding) and can never desynchronise from the
/// insertion logic.
///
/// Dead (Remove()d) entries are not persisted; stored ids are therefore NOT
/// stable across a save/load cycle — external ids are the durable handles.
[[nodiscard]] util::Status SaveIndex(const MvIndex& index, const std::string& path);

/// Loads a snapshot.  `dict` must be freshly constructed (terms are
/// re-interned in file order); the returned index points at it.
[[nodiscard]] util::Result<std::unique_ptr<MvIndex>> LoadIndex(const std::string& path,
                                                 rdf::TermDictionary* dict);

/// Binary image of a frozen index (magic "RDFCFZ01", same header/checksum
/// discipline as SaveIndex).
///
/// Unlike SaveIndex — which persists entries and *re-inserts* on load — the
/// frozen tree structure is written as a single relocatable blob: a count
/// header plus the five flat arrays, every cross-reference an array index.
/// LoadFrozenIndex reads the blob with one fread and slices it into the
/// in-memory arrays — no per-node rebuild, so load cost is I/O plus the
/// entry-table preparation (deterministic PrepareStored per live entry,
/// which also re-registers the canonical variables the probe walk looks up).
/// Tokens are stored in an explicit packed form so on-disk bytes never
/// depend on struct padding; term ids are mapped through the dictionary
/// remap while slicing, so loads into a pre-populated dictionary stay
/// correct.
///
/// The entry table keeps its slot positions (dead slots persist as empty),
/// so stored ids — and therefore probe results — are stable across a
/// save/load cycle, unlike SaveIndex.
[[nodiscard]] util::Status SaveFrozenIndex(const FrozenMvIndex& frozen,
                                           const std::string& path);

/// Loads a frozen image.  The returned index points at `dict`; the image is
/// validated (ValidateFrozen) before it is returned.
[[nodiscard]] util::Result<std::unique_ptr<FrozenMvIndex>> LoadFrozenIndex(
    const std::string& path, rdf::TermDictionary* dict);

/// One shard of a tiered version to persist (borrowed pointers; see
/// SaveTieredIndex).  Either tier may be null.
struct TieredShardRef {
  const FrozenMvIndex* base = nullptr;
  const MvIndex* delta = nullptr;
  const std::vector<std::uint64_t>* tombstones = nullptr;  // sorted; non-null
  std::uint64_t generation = 0;  // shard base generation (refreeze count)
};

/// One loaded shard: the frozen base, the delta journal rebuilt into a
/// pointer tree, and the tombstoned external ids masking the base.  Either
/// tier may be null.
struct TieredShardImage {
  std::unique_ptr<FrozenMvIndex> base;
  std::unique_ptr<MvIndex> delta;
  std::vector<std::uint64_t> tombstones;  // sorted external ids
  std::uint64_t generation = 0;
};

/// A loaded sharded tiered image (service/index_manager.h "Tiered write
/// path" / "Sharded index"), one entry per shard in routing order.
struct TieredImage {
  std::vector<TieredShardImage> shards;
};

/// Saves one published sharded tiered version as a blob per frozen base plus
/// one manifest:
///
///   <path>.base.<shard>.<generation>   shard's frozen base via
///                                      SaveFrozenIndex (skipped when the
///                                      shard has no base);
///   <path>                             the manifest (magic "RDFCTI02"):
///                                      shard count, the shared dictionary,
///                                      then per shard its generation,
///                                      sorted tombstones, and delta journal
///                                      in the SaveIndex entry encoding.
///
/// Every base blob is committed before the manifest, and the manifest names
/// the shard/generation pair each blob carries, so a crash between the blob
/// writes and the manifest commit (failpoint `compact.crash`) leaves the
/// previous manifest pointing at the previous blobs — always a consistent,
/// loadable version.  After a successful commit each shard's previous
/// generation blob is removed best-effort.
[[nodiscard]] util::Status SaveTieredIndex(
    const std::vector<TieredShardRef>& shards, const std::string& path);

/// Loads a tiered image.  `dict` must be freshly constructed; the manifest's
/// dictionary is interned first and the base blobs' terms remap onto it.
/// Base blobs are opened only after the manifest passes its checksum, so a
/// half-written blob from a crashed save is never touched.
[[nodiscard]] util::Result<TieredImage> LoadTieredIndex(
    const std::string& path, rdf::TermDictionary* dict);

}  // namespace index
}  // namespace rdfc
