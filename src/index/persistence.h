#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "index/frozen_index.h"
#include "index/mv_index.h"
#include "rdf/dictionary.h"
#include "util/status.h"

namespace rdfc {
namespace index {

/// Binary snapshot of an mv-index.
///
/// Format (little-endian, versioned magic header, trailing FNV checksum):
/// the term dictionary in id order, followed by every *live* stored entry as
/// its canonical triple list plus external ids.  Loading re-runs the
/// deterministic preparation pipeline (serialisation + radix insertion), so
/// the rebuilt tree is structurally identical to the saved one — the file
/// stays small (no tree encoding) and can never desynchronise from the
/// insertion logic.
///
/// Dead (Remove()d) entries are not persisted; stored ids are therefore NOT
/// stable across a save/load cycle — external ids are the durable handles.
[[nodiscard]] util::Status SaveIndex(const MvIndex& index, const std::string& path);

/// Loads a snapshot.  `dict` must be freshly constructed (terms are
/// re-interned in file order); the returned index points at it.
[[nodiscard]] util::Result<std::unique_ptr<MvIndex>> LoadIndex(const std::string& path,
                                                 rdf::TermDictionary* dict);

/// Binary image of a frozen index (magic "RDFCFZ01", same header/checksum
/// discipline as SaveIndex).
///
/// Unlike SaveIndex — which persists entries and *re-inserts* on load — the
/// frozen tree structure is written as a single relocatable blob: a count
/// header plus the five flat arrays, every cross-reference an array index.
/// LoadFrozenIndex reads the blob with one fread and slices it into the
/// in-memory arrays — no per-node rebuild, so load cost is I/O plus the
/// entry-table preparation (deterministic PrepareStored per live entry,
/// which also re-registers the canonical variables the probe walk looks up).
/// Tokens are stored in an explicit packed form so on-disk bytes never
/// depend on struct padding; term ids are mapped through the dictionary
/// remap while slicing, so loads into a pre-populated dictionary stay
/// correct.
///
/// The entry table keeps its slot positions (dead slots persist as empty),
/// so stored ids — and therefore probe results — are stable across a
/// save/load cycle, unlike SaveIndex.
[[nodiscard]] util::Status SaveFrozenIndex(const FrozenMvIndex& frozen,
                                           const std::string& path);

/// Loads a frozen image.  The returned index points at `dict`; the image is
/// validated (ValidateFrozen) before it is returned.
[[nodiscard]] util::Result<std::unique_ptr<FrozenMvIndex>> LoadFrozenIndex(
    const std::string& path, rdf::TermDictionary* dict);

/// A loaded tiered image (service/index_manager.h "Tiered write path"):
/// the frozen base, the delta journal rebuilt into a pointer tree, and the
/// tombstoned external ids masking the base.  Either tier may be null.
struct TieredImage {
  std::unique_ptr<FrozenMvIndex> base;
  std::unique_ptr<MvIndex> delta;
  std::vector<std::uint64_t> tombstones;  // sorted external ids
  std::uint64_t generation = 0;           // base generation (compaction count)
};

/// Saves one published tiered version as two files:
///
///   <path>.base.<generation>   the frozen base via SaveFrozenIndex
///                              (skipped when `base` is null);
///   <path>                     the manifest (magic "RDFCTI01"): generation,
///                              dictionary, sorted tombstones, and the delta
///                              journal in the SaveIndex entry encoding.
///
/// The base blob is committed before the manifest, and the manifest names
/// the generation it expects, so a crash between the two commits (failpoint
/// `compact.crash`) leaves the previous manifest pointing at the previous
/// base — always a consistent, loadable version.  After a successful commit
/// the previous generation's base blob is removed best-effort.
[[nodiscard]] util::Status SaveTieredIndex(
    const FrozenMvIndex* base, const MvIndex* delta,
    const std::vector<std::uint64_t>& tombstones, std::uint64_t generation,
    const std::string& path);

/// Loads a tiered image.  `dict` must be freshly constructed; the manifest's
/// dictionary is interned first and the base blob's terms remap onto it.
[[nodiscard]] util::Result<TieredImage> LoadTieredIndex(
    const std::string& path, rdf::TermDictionary* dict);

}  // namespace index
}  // namespace rdfc
