#include "index/radix_node.h"

namespace rdfc {
namespace index {

namespace {

void Accumulate(const RadixNode& node, std::size_t depth, RadixStats* stats) {
  ++stats->num_nodes;
  if (node.is_query()) ++stats->num_query_nodes;
  if (depth > stats->max_depth) stats->max_depth = depth;
  for (const auto& [first, edge] : node.edges) {
    (void)first;
    ++stats->num_edges;
    stats->total_label_tokens += edge.label.size();
    Accumulate(*edge.child, depth + 1, stats);
  }
}

}  // namespace

RadixStats ComputeRadixStats(const RadixNode& root) {
  RadixStats stats;
  Accumulate(root, 0, &stats);
  return stats;
}

}  // namespace index
}  // namespace rdfc
