#include "index/radix_node.h"

namespace rdfc {
namespace index {

RadixStats ComputeRadixStats(const RadixNode& root) {
  // Explicit stack, not recursion: a degenerate workload (no shared
  // prefixes, one long chain) makes tree depth proportional to the longest
  // serialisation, which must not be bounded by the C stack.
  RadixStats stats;
  struct Item {
    const RadixNode* node;
    std::size_t depth;
  };
  std::vector<Item> pending = {{&root, 0}};
  while (!pending.empty()) {
    const Item item = pending.back();
    pending.pop_back();
    ++stats.num_nodes;
    if (item.node->is_query()) ++stats.num_query_nodes;
    if (item.depth > stats.max_depth) stats.max_depth = item.depth;
    for (const auto& [first, edge] : item.node->edges) {
      (void)first;
      ++stats.num_edges;
      stats.total_label_tokens += edge.label.size();
      pending.push_back({edge.child.get(), item.depth + 1});
    }
  }
  return stats;
}

}  // namespace index
}  // namespace rdfc
