#include "index/journal.h"

#include <algorithm>
#include <csignal>
#include <cstring>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "util/failpoint.h"

namespace rdfc {
namespace index {

namespace {

constexpr char kJournalMagic[8] = {'R', 'D', 'F', 'C', 'W', 'J', '0', '1'};
/// magic + u64 base_sequence + u64 checksum.
constexpr std::uint64_t kHeaderBytes = 8 + 8 + 8;
/// u32 payload_len + u64 payload checksum.
constexpr std::uint64_t kRecordPrefixBytes = 4 + 8;
/// u64 sequence + u64 version + u32 num_ops.
constexpr std::uint64_t kMinPayloadBytes = 8 + 8 + 4;

/// FNV-1a, byte-compatible with the persistence formats.
class Checksum {
 public:
  void Update(const void* data, std::size_t n) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ ^= bytes[i];
      hash_ *= 0x100000001B3ull;
    }
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xCBF29CE484222325ull;
};

std::uint64_t FnvOf(const std::string& payload) {
  Checksum sum;
  sum.Update(payload.data(), payload.size());
  return sum.value();
}

/// In-memory payload encoder: records are assembled fully before any byte
/// touches the file, so a failed append can roll the file back cleanly.
class PayloadWriter {
 public:
  void U8(std::uint8_t v) { Raw(&v, 1); }
  void U32(std::uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(std::uint64_t v) { Raw(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U32(static_cast<std::uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  void Raw(const void* data, std::size_t n) {
    buffer_.append(static_cast<const char*>(data), n);
  }
  const std::string& buffer() const { return buffer_; }

 private:
  std::string buffer_;
};

/// Bounds-checked cursor over one record payload.  Any short read means the
/// record is corrupt despite a matching checksum — the caller truncates.
class PayloadReader {
 public:
  explicit PayloadReader(const std::string& payload) : payload_(payload) {}

  bool U8(std::uint8_t* v) { return Raw(v, 1); }
  bool U32(std::uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(std::uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool Str(std::string* s) {
    std::uint32_t n = 0;
    if (!U32(&n)) return false;
    if (n > payload_.size() - pos_) return false;
    s->assign(payload_, pos_, n);
    pos_ += n;
    return true;
  }
  bool Raw(void* data, std::size_t n) {
    if (n > payload_.size() - pos_) return false;
    std::memcpy(data, payload_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  bool exhausted() const { return pos_ == payload_.size(); }

 private:
  const std::string& payload_;
  std::size_t pos_ = 0;
};

void EncodeTerm(PayloadWriter* w, const rdf::TermDictionary& dict,
                rdf::TermId id) {
  w->U8(static_cast<std::uint8_t>(dict.kind(id)));
  w->Str(dict.lexical(id));
}

bool DecodeTerm(PayloadReader* r, rdf::TermDictionary* dict,
                rdf::TermId* out) {
  std::uint8_t kind = 0;
  std::string lexical;
  if (!r->U8(&kind) || kind > 3 || !r->Str(&lexical)) return false;
  *out = dict->Intern(static_cast<rdf::TermKind>(kind), lexical);
  return true;
}

/// Parses one payload into a batch, interning add-op terms.  Returns false
/// on any structural violation (the record is then treated as corrupt).
bool DecodeBatch(const std::string& payload, rdf::TermDictionary* dict,
                 JournalBatch* batch) {
  PayloadReader r(payload);
  std::uint32_t num_ops = 0;
  if (!r.U64(&batch->sequence) || !r.U64(&batch->version) || !r.U32(&num_ops)) {
    return false;
  }
  // Each op takes at least kind + view_id bytes; a count the payload cannot
  // hold is corruption — reject before sizing the vector by it.
  if (static_cast<std::uint64_t>(num_ops) * 9 > payload.size()) return false;
  batch->ops.reserve(num_ops);
  for (std::uint32_t i = 0; i < num_ops; ++i) {
    JournalOp op;
    std::uint8_t kind = 0;
    if (!r.U8(&kind) || !r.U64(&op.view_id)) return false;
    if (kind != static_cast<std::uint8_t>(JournalOp::Kind::kAdd) &&
        kind != static_cast<std::uint8_t>(JournalOp::Kind::kRemove)) {
      return false;
    }
    op.kind = static_cast<JournalOp::Kind>(kind);
    if (op.kind == JournalOp::Kind::kAdd) {
      std::uint32_t num_triples = 0;
      if (!r.U32(&num_triples)) return false;
      if (static_cast<std::uint64_t>(num_triples) * 18 > payload.size()) {
        return false;
      }
      for (std::uint32_t t = 0; t < num_triples; ++t) {
        rdf::TermId s = rdf::kNullTerm;
        rdf::TermId p = rdf::kNullTerm;
        rdf::TermId o = rdf::kNullTerm;
        if (!DecodeTerm(&r, dict, &s) || !DecodeTerm(&r, dict, &p) ||
            !DecodeTerm(&r, dict, &o)) {
          return false;
        }
        op.view.AddPattern(s, p, o);
      }
    }
    batch->ops.push_back(std::move(op));
  }
  return r.exhausted();
}

util::Status TruncateTo(std::FILE* file, std::uint64_t length) {
  if (std::fflush(file) != 0) {
    return util::Status::Internal("journal flush before truncate failed");
  }
#if defined(__unix__) || defined(__APPLE__)
  if (ftruncate(fileno(file), static_cast<off_t>(length)) != 0) {
    return util::Status::Internal("journal ftruncate failed");
  }
#else
  return util::Status::Unsupported("journal truncation requires POSIX");
#endif
  if (std::fseek(file, static_cast<long>(length), SEEK_SET) != 0) {
    return util::Status::Internal("journal seek after truncate failed");
  }
  return util::Status::OK();
}

}  // namespace

WriteAheadJournal::WriteAheadJournal(JournalOptions options, std::FILE* file)
    : options_(std::move(options)), file_(file) {
#if defined(__unix__) || defined(__APPLE__)
  fd_ = fileno(file_);
#endif
}

WriteAheadJournal::~WriteAheadJournal() {
  if (flusher_ != nullptr) {
    {
      util::MutexLock lock(&flush_mu_);
      flush_stop_ = true;
    }
    flush_cv_.NotifyAll();
    flusher_->Shutdown();
  }
  if (file_ == nullptr) return;
#if defined(__unix__) || defined(__APPLE__)
  // Best-effort group-commit drain: a clean shutdown should not leave the
  // tail of the window exposed to power loss.
  bool dirty = false;
  {
    util::MutexLock lock(&flush_mu_);
    dirty = flush_dirty_;
  }
  if (dirty && std::fflush(file_) == 0) (void)fsync(fd_);
#endif
  std::fclose(file_);
}

void WriteAheadJournal::StartFlusher() {
  util::ThreadPool::Options pool_options;
  pool_options.num_threads = 1;
  pool_options.queue_capacity = 1;
  flusher_ = std::make_unique<util::ThreadPool>(pool_options);
  const util::Status submitted =
      flusher_->TrySubmit([this](std::size_t) { FlusherLoop(); });
  // A fresh 1-slot pool cannot refuse; if it somehow does, group mode
  // degrades to syncing on Truncate()/Sync()/shutdown only — still within
  // kGroup's documented power-loss window semantics, never losing
  // kernel-flushed records to SIGKILL.
  if (!submitted.ok()) flusher_.reset();
}

void WriteAheadJournal::FlusherLoop() {
  for (;;) {
    {
      util::MutexLock lock(&flush_mu_);
      while (!flush_dirty_ && !flush_stop_) flush_cv_.Wait(&flush_mu_);
      if (flush_stop_) return;
      // Let the window fill so neighbouring appends share one barrier.
      flush_cv_.WaitFor(&flush_mu_, options_.group_window_micros);
      if (flush_stop_) return;
      flush_dirty_ = false;
    }
    // Off-lock: the barrier covers everything fflushed before this call;
    // an append racing past it re-marks the tail dirty for the next round.
#if defined(__unix__) || defined(__APPLE__)
    const bool synced = fsync(fd_) == 0;
#else
    const bool synced = true;
#endif
    util::MutexLock lock(&flush_mu_);
    if (synced) {
      ++group_fsyncs_;
    } else {
      flush_dirty_ = true;  // transient failure: retry next window
    }
  }
}

JournalStats WriteAheadJournal::stats_snapshot() const {
  JournalStats out = stats_;
  util::MutexLock lock(&flush_mu_);
  out.fsyncs += group_fsyncs_;
  return out;
}

util::Result<std::unique_ptr<WriteAheadJournal>> WriteAheadJournal::Open(
    const JournalOptions& options, rdf::TermDictionary* dict,
    const ReplayFn& replay) {
  if (options.path.empty()) {
    return util::Status::InvalidArgument("journal path is empty");
  }
  // "a+b" creates the file when absent but pins every write to the end on
  // some libcs; reopen in "r+b" for positioned writes once it exists.
  std::FILE* probe = std::fopen(options.path.c_str(), "a+b");
  if (probe == nullptr) {
    return util::Status::InvalidArgument("cannot open journal: " +
                                         options.path);
  }
  std::fclose(probe);
  std::FILE* file = std::fopen(options.path.c_str(), "r+b");
  if (file == nullptr) {
    return util::Status::InvalidArgument("cannot reopen journal: " +
                                         options.path);
  }
  std::unique_ptr<WriteAheadJournal> journal(
      new WriteAheadJournal(options, file));  // NOLINT(raw-new): private ctor
  RDFC_RETURN_NOT_OK(journal->ReplayAndRecover(dict, replay));
  if (options.fsync == JournalFsync::kGroup) journal->StartFlusher();
  return journal;
}

util::Status WriteAheadJournal::WriteHeader(std::uint64_t base_sequence) {
  RDFC_RETURN_NOT_OK(TruncateTo(file_, 0));
  Checksum sum;
  sum.Update(kJournalMagic, sizeof(kJournalMagic));
  sum.Update(&base_sequence, sizeof(base_sequence));
  const std::uint64_t checksum = sum.value();
  bool ok = std::fwrite(kJournalMagic, 1, sizeof(kJournalMagic), file_) ==
            sizeof(kJournalMagic);
  ok = ok && std::fwrite(&base_sequence, 1, sizeof(base_sequence), file_) ==
                 sizeof(base_sequence);
  ok = ok && std::fwrite(&checksum, 1, sizeof(checksum), file_) ==
                 sizeof(checksum);
  if (!ok || std::fflush(file_) != 0) {
    return util::Status::Internal("journal header write failed: " +
                                  options_.path);
  }
  end_offset_ = kHeaderBytes;
  stats_.last_sequence = base_sequence;
  return util::Status::OK();
}

util::Status WriteAheadJournal::ReplayAndRecover(rdf::TermDictionary* dict,
                                                 const ReplayFn& replay) {
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    return util::Status::Internal("journal seek failed: " + options_.path);
  }
  const long end = std::ftell(file_);
  const std::uint64_t size = end > 0 ? static_cast<std::uint64_t>(end) : 0;
  std::rewind(file_);

  // Header: absent (fresh file) or corrupt both reset to a fresh journal.
  // Only Truncate() rewrites the header, and its caller has already
  // committed a covering image, so a corrupt header can only cost records a
  // crashed Truncate() was about to drop anyway.
  bool header_ok = size >= kHeaderBytes;
  std::uint64_t base_sequence = 0;
  if (header_ok) {
    char magic[8] = {};
    std::uint64_t stored_sum = 0;
    header_ok = std::fread(magic, 1, sizeof(magic), file_) == sizeof(magic) &&
                std::fread(&base_sequence, 1, sizeof(base_sequence), file_) ==
                    sizeof(base_sequence) &&
                std::fread(&stored_sum, 1, sizeof(stored_sum), file_) ==
                    sizeof(stored_sum);
    if (header_ok) {
      Checksum sum;
      sum.Update(magic, sizeof(magic));
      sum.Update(&base_sequence, sizeof(base_sequence));
      header_ok = std::memcmp(magic, kJournalMagic, sizeof(magic)) == 0 &&
                  stored_sum == sum.value();
    }
  }
  if (!header_ok) {
    stats_.truncated_bytes += size;
    return WriteHeader(0);
  }
  stats_.last_sequence = base_sequence;

  // Record scan: each record must be fully present, checksum-clean,
  // structurally parseable, and carry the next sequence number; the first
  // violation ends the journal there.
  std::uint64_t offset = kHeaderBytes;
  bool torn = false;
  while (offset < size) {
    const std::uint64_t remaining = size - offset;
    std::uint32_t payload_len = 0;
    std::uint64_t stored_sum = 0;
    if (remaining < kRecordPrefixBytes ||
        std::fread(&payload_len, 1, sizeof(payload_len), file_) !=
            sizeof(payload_len) ||
        std::fread(&stored_sum, 1, sizeof(stored_sum), file_) !=
            sizeof(stored_sum)) {
      torn = true;
      break;
    }
    if (payload_len < kMinPayloadBytes ||
        payload_len > remaining - kRecordPrefixBytes) {
      torn = true;
      break;
    }
    std::string payload(payload_len, '\0');
    if (std::fread(payload.data(), 1, payload_len, file_) != payload_len) {
      torn = true;
      break;
    }
    JournalBatch batch;
    if (FnvOf(payload) != stored_sum || !DecodeBatch(payload, dict, &batch) ||
        batch.sequence != stats_.last_sequence + 1) {
      torn = true;
      break;
    }
    if (RDFC_FAILPOINT("journal.replay")) {
      // Simulated replay interruption (I/O error mid-recovery): stop WITHOUT
      // truncating — the unreplayed records are acknowledged data, so the
      // journal goes degraded (appends refused) and a clean re-open replays
      // everything.
      stats_.degraded = true;
      break;
    }
    RDFC_RETURN_NOT_OK(replay(batch));
    offset += kRecordPrefixBytes + payload_len;
    stats_.last_sequence = batch.sequence;
    ++stats_.records_replayed;
    stats_.ops_replayed += batch.ops.size();
  }

  end_offset_ = offset;
  if (torn && offset < size) {
    stats_.truncated_bytes += size - offset;
    RDFC_RETURN_NOT_OK(TruncateTo(file_, offset));
  } else if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return util::Status::Internal("journal seek failed: " + options_.path);
  }
  return util::Status::OK();
}

util::Status WriteAheadJournal::Append(const JournalBatch& batch,
                                       const rdf::TermDictionary& dict) {
  if (stats_.degraded) {
    return util::Status::Internal(
        "journal is degraded (interrupted replay left unreplayed records); "
        "reopen to recover before appending");
  }
  if (batch.sequence != next_sequence()) {
    return util::Status::InvalidArgument("journal sequence gap");
  }
  if (RDFC_FAILPOINT("journal.append")) {
    return util::Status::Internal("failpoint journal.append");
  }

  PayloadWriter w;
  w.U64(batch.sequence);
  w.U64(batch.version);
  w.U32(static_cast<std::uint32_t>(batch.ops.size()));
  for (const JournalOp& op : batch.ops) {
    w.U8(static_cast<std::uint8_t>(op.kind));
    w.U64(op.view_id);
    if (op.kind == JournalOp::Kind::kAdd) {
      w.U32(static_cast<std::uint32_t>(op.view.size()));
      for (const rdf::Triple& t : op.view.patterns()) {
        EncodeTerm(&w, dict, t.s);
        EncodeTerm(&w, dict, t.p);
        EncodeTerm(&w, dict, t.o);
      }
    }
  }
  const std::string& payload = w.buffer();
  const std::uint32_t payload_len = static_cast<std::uint32_t>(payload.size());
  const std::uint64_t payload_sum = FnvOf(payload);
  std::string record;
  record.reserve(kRecordPrefixBytes + payload.size());
  record.append(reinterpret_cast<const char*>(&payload_len),
                sizeof(payload_len));
  record.append(reinterpret_cast<const char*>(&payload_sum),
                sizeof(payload_sum));
  record.append(payload);

  const std::uint64_t pre = end_offset_;
  if (RDFC_FAILPOINT("journal.crash")) {
    // Simulated power-cut mid-append: flush a torn prefix to the kernel and
    // die like a SIGKILL'd process — recovery must truncate exactly here.
    const std::size_t torn = std::max<std::size_t>(1, record.size() / 2);
    (void)std::fwrite(record.data(), 1, torn, file_);
    (void)std::fflush(file_);
    (void)std::raise(SIGKILL);
    std::abort();  // unreachable on POSIX; keep the site noreturn anyway
  }
  if (std::fwrite(record.data(), 1, record.size(), file_) != record.size() ||
      std::fflush(file_) != 0) {
    RollBackTo(pre);
    return util::Status::Internal("journal append write failed: " +
                                  options_.path);
  }
  if (options_.fsync == JournalFsync::kAlways) {
    const util::Status st = Sync();
    if (!st.ok()) {
      RollBackTo(pre);
      return st;
    }
  } else if (options_.fsync == JournalFsync::kGroup) {
    // Group commit off the append path: the record is already in the
    // kernel (fflush above), so only power loss — never SIGKILL — can
    // reach it; the flusher pays the disk barrier within one window.
    util::MutexLock lock(&flush_mu_);
    if (!flush_dirty_) {
      flush_dirty_ = true;
      flush_cv_.NotifyAll();
    }
  }

  end_offset_ = pre + record.size();
  stats_.last_sequence = batch.sequence;
  ++stats_.records_appended;
  return util::Status::OK();
}

util::Status WriteAheadJournal::Sync() {
  if (RDFC_FAILPOINT("journal.fsync")) {
    return util::Status::Internal("failpoint journal.fsync");
  }
  if (std::fflush(file_) != 0) {
    return util::Status::Internal("journal flush failed: " + options_.path);
  }
#if defined(__unix__) || defined(__APPLE__)
  if (options_.fsync != JournalFsync::kOff && fsync(fd_) != 0) {
    return util::Status::Internal("journal fsync failed: " + options_.path);
  }
#endif
  ++stats_.fsyncs;
  util::MutexLock lock(&flush_mu_);
  flush_dirty_ = false;
  return util::Status::OK();
}

util::Status WriteAheadJournal::Truncate() {
  if (stats_.degraded) {
    return util::Status::Internal(
        "refusing to truncate a degraded journal (unreplayed records)");
  }
  RDFC_RETURN_NOT_OK(WriteHeader(stats_.last_sequence));
#if defined(__unix__) || defined(__APPLE__)
  // The new header must be durable before the caller deletes or overwrites
  // the image that now covers the dropped records.
  if (fsync(fd_) != 0) {
    return util::Status::Internal("journal fsync failed: " + options_.path);
  }
#endif
  util::MutexLock lock(&flush_mu_);
  flush_dirty_ = false;
  return util::Status::OK();
}

void WriteAheadJournal::RollBackTo(std::uint64_t length) {
  // Best effort: a failed rollback leaves a record recovery would replay
  // even though the publish was not acknowledged — replay is idempotent, so
  // that is a liveness wart, not a soundness hole.
  (void)TruncateTo(file_, length).ok();
}

}  // namespace index
}  // namespace rdfc
