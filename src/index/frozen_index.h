#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "containment/pipeline.h"
#include "index/mv_index.h"
#include "query/serialisation.h"
#include "rdf/dictionary.h"
#include "util/status.h"

namespace rdfc {
namespace index {

/// Total order on tokens used by the frozen edge-dispatch arrays.  Any total
/// order works as long as freeze and probe agree; this one packs
/// (pred, type, inverse) into one integer compare so the common case (two
/// kPair tokens with different predicates) is decided in a single branch.
inline std::uint64_t FrozenTokenClassKey(const query::Token& t) {
  return (static_cast<std::uint64_t>(t.pred) << 16) |
         (static_cast<std::uint64_t>(t.type) << 8) |
         static_cast<std::uint64_t>(t.inverse ? 1 : 0);
}
inline bool FrozenTokenLess(const query::Token& a, const query::Token& b) {
  const std::uint64_t ka = FrozenTokenClassKey(a);
  const std::uint64_t kb = FrozenTokenClassKey(b);
  if (ka != kb) return ka < kb;
  return a.term < b.term;
}

/// A read-only compilation of an MvIndex into a flat, cache-friendly probe
/// representation (DESIGN.md "Frozen index").
///
/// The pointer Radix tree is the right structure for mutation (insert with
/// node splitting, removal with re-merging) but a poor one to probe: every
/// edge hop costs an unordered_map lookup plus a unique_ptr dereference plus
/// a heap-allocated label vector — two to three dependent cache misses per
/// hop.  Freezing compiles the tree in one pass into four contiguous
/// arrays:
///
///   nodes_    all vertices in BFS order, children of a vertex adjacent, so
///             an edge's child is `first_child + edge_ordinal` — no child
///             pointers at all;
///   edges_*   per-vertex spans of parallel arrays: the dispatch array of
///             first tokens (sorted by FrozenTokenLess, probed with a
///             binary/linear hybrid), and each label's (offset, len) into
///   labels_   one shared token pool holding every edge label back to back;
///   stored_   the per-vertex stored-id lists, concatenated.
///
/// The entry table (PreparedStored + external ids) and the skeleton-free
/// side list are carried over from the source index *by stored id*, so a
/// frozen probe returns exactly the stored ids the pointer walk would — the
/// equivalence the tests and rdfc_fuzz assert.  A FrozenMvIndex never
/// mutates; the service freezes each published snapshot while staging keeps
/// mutating the pointer tree (service/index_manager.h).
class FrozenMvIndex {
 public:
  /// One vertex.  All five fields are array indexes, so the struct is
  /// trivially relocatable — persistence writes the node array as raw bytes.
  struct Node {
    std::uint32_t first_edge = 0;    // span start in the edge arrays
    std::uint32_t num_edges = 0;
    std::uint32_t first_child = 0;   // node index of edge 0's child
    std::uint32_t stored_begin = 0;  // span start in stored_ids()
    std::uint32_t stored_count = 0;
  };
  static_assert(sizeof(Node) == 20, "Node must stay padding-free (persisted)");

  /// Compiles `source` in one pass (BFS over the pointer tree plus one copy
  /// of the live entry table).  The frozen index keeps the source's
  /// dictionary pointer; it does not keep the source itself.
  explicit FrozenMvIndex(const MvIndex& source);
  RDFC_DISALLOW_COPY_AND_ASSIGN(FrozenMvIndex);

  /// Algorithm 3 over the flat layout — same ProbeResult (contained set,
  /// counters, timings) as MvIndex::FindContaining on the source index.
  ProbeResult FindContaining(const query::BgpQuery& q,
                             const ProbeOptions& options = {}) const;
  ProbeResult FindContaining(const containment::PreparedProbe& probe,
                             const ProbeOptions& options = {}) const;

  // ------------------------------------------------------------------
  // Entry table (indexed by the source index's stored ids)
  // ------------------------------------------------------------------

  std::size_t num_entries() const { return entries_.size(); }
  std::size_t num_live_entries() const { return num_live_; }
  bool alive(std::uint32_t stored_id) const {
    return stored_id < entries_.size() && entries_[stored_id].alive;
  }
  const containment::PreparedStored& entry(std::uint32_t stored_id) const {
    return entries_[stored_id].prepared;
  }
  const std::vector<std::uint64_t>& external_ids(
      std::uint32_t stored_id) const {
    return entries_[stored_id].external_ids;
  }
  const std::vector<std::uint32_t>& skeleton_free_entries() const {
    return skeleton_free_;
  }

  // ------------------------------------------------------------------
  // Flat structure (read by the walk, validation, stats, persistence)
  // ------------------------------------------------------------------

  const std::vector<Node>& nodes() const { return nodes_; }
  /// Dispatch array: first token of every edge, grouped per node, sorted
  /// within each node's span by FrozenTokenLess.
  const std::vector<query::Token>& edge_first_tokens() const {
    return edge_first_;
  }
  const std::vector<std::uint32_t>& edge_label_offsets() const {
    return edge_label_offset_;
  }
  const std::vector<std::uint32_t>& edge_label_lens() const {
    return edge_label_len_;
  }
  const std::vector<query::Token>& label_pool() const { return labels_; }
  const std::vector<std::uint32_t>& stored_ids() const { return stored_ids_; }

  const rdf::TermDictionary& dict() const { return *dict_; }

  /// Bytes held by the flat probe structure (nodes + edges + label pool +
  /// stored-id pool; the entry table is excluded — both layouts share it).
  std::size_t StructureBytes() const;

 private:
  struct Entry {
    containment::PreparedStored prepared;
    std::vector<std::uint64_t> external_ids;
    bool alive = false;
  };

  /// Uninitialised shell for LoadFrozenIndex (persistence.cc), which fills
  /// the arrays straight from the on-disk blob.
  explicit FrozenMvIndex(const rdf::TermDictionary* dict) : dict_(dict) {}
  friend util::Result<std::unique_ptr<FrozenMvIndex>>
  LoadFrozenIndex(const std::string& path, rdf::TermDictionary* dict);

  /// Index into the edge arrays of `node`'s edge starting with `token`, or
  /// -1.  Hybrid dispatch: linear scan for small fan-out (the common case —
  /// equality is one 12-byte compare), binary search above that.
  std::int64_t FindEdge(const Node& node, const query::Token& token) const;

  const rdf::TermDictionary* dict_ = nullptr;
  std::vector<Node> nodes_;  // BFS order; nodes_[0] is the root
  std::vector<query::Token> edge_first_;
  std::vector<std::uint32_t> edge_label_offset_;
  std::vector<std::uint32_t> edge_label_len_;
  std::vector<query::Token> labels_;
  std::vector<std::uint32_t> stored_ids_;
  std::vector<Entry> entries_;
  std::vector<std::uint32_t> skeleton_free_;
  std::size_t num_live_ = 0;
};

}  // namespace index
}  // namespace rdfc
