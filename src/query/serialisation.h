#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "query/bgp_query.h"
#include "rdf/dictionary.h"
#include "util/status.h"

namespace rdfc {
namespace query {

/// Alphabet of the serialised form (Section 3.2).  A serialised query is a
/// list of tokens: the anchor term, `⟨p,o⟩` / `⟨p⁻¹,s⟩` pairs, parenthesis
/// delimiters for nested subgraphs, and — for multi-component queries arising
/// in Section 5.2 — a component separator followed by the next component's
/// anchor.
enum class TokenType : std::uint8_t {
  kAnchor,     // a term: the anchor vertex of a (sub-)serialisation
  kPair,       // ⟨p,o⟩ (inverse=false) or ⟨p⁻¹,s⟩ (inverse=true)
  kOpen,       // (
  kClose,      // )
  kSeparator,  // component boundary; the next token is a kAnchor
};

struct Token {
  TokenType type = TokenType::kOpen;
  bool inverse = false;       // only for kPair
  rdf::TermId pred = rdf::kNullTerm;  // only for kPair
  rdf::TermId term = rdf::kNullTerm;  // kAnchor: anchor term; kPair: target

  static Token Anchor(rdf::TermId term) {
    Token t;
    t.type = TokenType::kAnchor;
    t.term = term;
    return t;
  }
  static Token Pair(rdf::TermId pred, rdf::TermId term, bool inverse) {
    Token t;
    t.type = TokenType::kPair;
    t.pred = pred;
    t.term = term;
    t.inverse = inverse;
    return t;
  }
  static Token Open() { return Token{TokenType::kOpen, false, 0, 0}; }
  static Token Close() { return Token{TokenType::kClose, false, 0, 0}; }
  static Token Separator() { return Token{TokenType::kSeparator, false, 0, 0}; }

  bool operator==(const Token& other) const {
    return type == other.type && inverse == other.inverse &&
           pred == other.pred && term == other.term;
  }
};

struct TokenHash {
  std::size_t operator()(const Token& t) const {
    std::uint64_t h = static_cast<std::uint64_t>(t.type) |
                      (static_cast<std::uint64_t>(t.inverse) << 8);
    h = h * 0x9E3779B97F4A7C15ull + t.pred;
    h = h * 0x9E3779B97F4A7C15ull + t.term;
    h ^= h >> 31;
    return static_cast<std::size_t>(h);
  }
};

/// Maps original variables to canonical `?x1, ?x2, ...` in first-appearance
/// order (optimisation II of Section 4.2) and remembers the inverse mapping.
class CanonicalMap {
 public:
  explicit CanonicalMap(rdf::TermDictionary* dict) : dict_(dict) {}

  /// Canonical rendering of `term`: canonical variable for variables,
  /// identity for constants/blanks.
  rdf::TermId Canonicalise(rdf::TermId term);

  /// Original term for a canonical variable, kNullTerm if unknown.
  rdf::TermId OriginalOf(rdf::TermId canonical_var) const;

  std::uint32_t num_variables() const {
    return static_cast<std::uint32_t>(original_of_.size());
  }

  /// Full canonical-variable -> original-variable mapping.
  const std::unordered_map<rdf::TermId, rdf::TermId>& original_map() const {
    return original_of_;
  }

 private:
  rdf::TermDictionary* dict_;
  std::unordered_map<rdf::TermId, rdf::TermId> canon_of_;
  std::unordered_map<rdf::TermId, rdf::TermId> original_of_;
};

/// Serialisation output: token stream plus the variable renaming used.
struct SerialisedQuery {
  std::vector<Token> tokens;
  std::uint32_t num_components = 0;
};

/// Deterministic anchor selection for a connected component: highest degree,
/// then lexicographically smallest incident (pred, direction) signature, then
/// smallest term id.  Deterministic anchors are what let recurring queries
/// dedup to the same radix path.
rdf::TermId ChooseAnchor(const BgpQuery& component);

/// Algorithm 1 with the losslessness fix described in DESIGN.md: every
/// triple pattern is emitted exactly once; pairs whose target vertex was
/// already visited encode cycle-closing edges.  `component` must be a single
/// connected component with no variable predicates.  Appends to `out`.
[[nodiscard]] util::Status SerialiseComponent(const BgpQuery& component,
                                rdf::TermDictionary* dict, rdf::TermId anchor,
                                CanonicalMap* canonical,
                                std::vector<Token>* out);

/// Serialises an arbitrary BGP query with IRI predicates: each connected
/// component is serialised from its deterministic anchor; components are
/// joined with kSeparator tokens in a deterministic order (by first token).
/// Returns InvalidArgument when the query has variable predicates (callers
/// strip those first, Section 5.2) or is empty.
[[nodiscard]] util::Result<SerialisedQuery> SerialiseQuery(const BgpQuery& query,
                                             rdf::TermDictionary* dict,
                                             CanonicalMap* canonical);

/// Debug/golden rendering, e.g. `?x1 ( <fromAlbum>:?x2 ( <name>:?x3 ) )`.
std::string TokensToString(const std::vector<Token>& tokens,
                           const rdf::TermDictionary& dict);

}  // namespace query
}  // namespace rdfc
