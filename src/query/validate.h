#pragma once

#include <vector>

#include "query/bgp_query.h"
#include "query/serialisation.h"
#include "rdf/dictionary.h"
#include "util/status.h"

namespace rdfc {
namespace query {

/// Self-verification for the Algorithm-1 token-stream grammar.  A serialised
/// query must match
///
///   stream    := component (Separator component)*
///   component := Anchor subtree
///   subtree   := Open (Pair subtree?)+ Close
///
/// with the well-formedness rules the rest of the stack silently relies on:
/// balanced parentheses, no empty `()` groups, anchors only at component
/// starts, `⟨p,o⟩`/`⟨p⁻¹,s⟩` pairs carrying a non-null constant predicate
/// (variable predicates are stripped before serialisation, Section 5.2), and
/// delimiter tokens with null payload fields.  Returns OK or an
/// InvalidArgument Status naming the offending token position and rule.
[[nodiscard]] util::Status ValidateSerialisation(const std::vector<Token>& tokens,
                                                 const rdf::TermDictionary& dict);

/// Inverse of Algorithm 1: reconstructs the BGP skeleton a token stream
/// encodes (in the stream's own — canonical — variable space).  The losslessness
/// deviation in DESIGN.md is exactly what makes this total on valid streams.
/// Fails with the ValidateSerialisation diagnosis on malformed streams and on
/// streams that emit the same triple pattern twice.
[[nodiscard]] util::Result<BgpQuery> ParseSerialisation(
    const std::vector<Token>& tokens, const rdf::TermDictionary& dict);

/// Round-trip identity `Parse ∘ Serialise = id` for a query without variable
/// predicates: serialises `query`, validates the stream, parses it back, and
/// compares the reconstructed pattern set against the canonicalised original.
/// Any mismatch means Algorithm 1 dropped or invented a constraint — the
/// exact failure mode that silently breaks the index's containment answers.
[[nodiscard]] util::Status ValidateRoundTrip(const BgpQuery& query,
                                             rdf::TermDictionary* dict);

}  // namespace query
}  // namespace rdfc
