#include "query/validate.h"

#include <string>

namespace rdfc {
namespace query {

namespace {

const char* TokenTypeName(TokenType type) {
  switch (type) {
    case TokenType::kAnchor: return "anchor";
    case TokenType::kPair: return "pair";
    case TokenType::kOpen: return "open";
    case TokenType::kClose: return "close";
    case TokenType::kSeparator: return "separator";
  }
  return "?";
}

util::Status TokenError(std::size_t pos, const Token& tok,
                        const std::string& rule) {
  return util::Status::InvalidArgument("serialisation token " +
                                       std::to_string(pos) + " (" +
                                       TokenTypeName(tok.type) + "): " + rule);
}

/// Payload rules per token type; delimiters must carry null fields so that
/// Token equality (and hence radix-edge matching) never depends on stale
/// payload bits.
util::Status CheckFields(std::size_t pos, const Token& tok,
                         const rdf::TermDictionary& dict) {
  switch (tok.type) {
    case TokenType::kAnchor:
      if (tok.term == rdf::kNullTerm) {
        return TokenError(pos, tok, "anchor has a null term");
      }
      if (tok.pred != rdf::kNullTerm || tok.inverse) {
        return TokenError(pos, tok, "anchor carries pair payload fields");
      }
      break;
    case TokenType::kPair:
      if (tok.pred == rdf::kNullTerm || tok.term == rdf::kNullTerm) {
        return TokenError(pos, tok, "pair has a null predicate or target");
      }
      if (dict.Valid(tok.pred) && dict.IsVariable(tok.pred)) {
        return TokenError(pos, tok,
                          "pair predicate is a variable (Section 5.2 "
                          "patterns must be stripped before serialisation)");
      }
      break;
    case TokenType::kOpen:
    case TokenType::kClose:
    case TokenType::kSeparator:
      if (tok.pred != rdf::kNullTerm || tok.term != rdf::kNullTerm ||
          tok.inverse) {
        return TokenError(pos, tok, "delimiter carries payload fields");
      }
      break;
  }
  return util::Status::OK();
}

/// Shared grammar walk.  When `out` is non-null, reconstructs the skeleton
/// into it (ParseSerialisation); with a null `out` it is a pure validation
/// pass (ValidateSerialisation).
util::Status Walk(const std::vector<Token>& tokens,
                  const rdf::TermDictionary& dict, BgpQuery* out) {
  if (tokens.empty()) {
    return util::Status::InvalidArgument(
        "serialisation is empty (queries without a skeleton are kept on the "
        "side list, never serialised)");
  }
  // `stack` holds the vertex each open parenthesis group is anchored at;
  // `attach` is the vertex a kOpen seen next would attach to (the component
  // anchor right after kAnchor, else the previous pair's target).
  std::vector<rdf::TermId> stack;
  rdf::TermId attach = rdf::kNullTerm;
  TokenType prev = TokenType::kSeparator;  // sentinel: stream start
  bool group_has_pair = false;             // current group emitted >= 1 pair

  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    RDFC_RETURN_NOT_OK(CheckFields(i, tok, dict));
    switch (tok.type) {
      case TokenType::kAnchor:
        if (prev != TokenType::kSeparator) {
          return TokenError(i, tok,
                            "anchor not at a component start (anchors only "
                            "follow a separator or open the stream)");
        }
        attach = tok.term;
        break;
      case TokenType::kOpen:
        if (prev != TokenType::kAnchor && prev != TokenType::kPair) {
          return TokenError(i, tok, "open must follow an anchor or a pair");
        }
        stack.push_back(attach);
        group_has_pair = false;
        break;
      case TokenType::kPair: {
        if (prev != TokenType::kOpen && prev != TokenType::kPair &&
            prev != TokenType::kClose) {
          return TokenError(i, tok, "pair outside a parenthesis group");
        }
        if (stack.empty()) {
          return TokenError(i, tok, "pair at parenthesis depth 0");
        }
        const rdf::TermId vertex = stack.back();
        if (out != nullptr) {
          const rdf::Triple triple = tok.inverse
                                         ? rdf::Triple(tok.term, tok.pred, vertex)
                                         : rdf::Triple(vertex, tok.pred, tok.term);
          if (!out->AddPattern(triple)) {
            return TokenError(i, tok,
                              "duplicate triple pattern (Algorithm 1 emits "
                              "every pattern exactly once)");
          }
        }
        attach = tok.term;
        group_has_pair = true;
        break;
      }
      case TokenType::kClose:
        if (stack.empty()) {
          return TokenError(i, tok, "unbalanced close parenthesis");
        }
        if (!group_has_pair) {
          return TokenError(i, tok, "empty parenthesis group");
        }
        stack.pop_back();
        // The enclosing group (if any) necessarily emitted a pair already —
        // its open can only have been followed by pairs or this subtree.
        group_has_pair = !stack.empty();
        break;
      case TokenType::kSeparator:
        if (!stack.empty()) {
          return TokenError(i, tok,
                            "component separator inside an open parenthesis "
                            "group");
        }
        if (prev != TokenType::kClose) {
          return TokenError(i, tok, "separator must follow a closed component");
        }
        break;
    }
    prev = tok.type;
  }
  if (!stack.empty()) {
    return util::Status::InvalidArgument(
        "serialisation ends with " + std::to_string(stack.size()) +
        " unbalanced open parenthesis group(s)");
  }
  if (prev != TokenType::kClose) {
    return util::Status::InvalidArgument(
        "serialisation ends mid-component (trailing " +
        std::string(TokenTypeName(prev)) + ")");
  }
  return util::Status::OK();
}

}  // namespace

util::Status ValidateSerialisation(const std::vector<Token>& tokens,
                                   const rdf::TermDictionary& dict) {
  return Walk(tokens, dict, nullptr);
}

util::Result<BgpQuery> ParseSerialisation(const std::vector<Token>& tokens,
                                          const rdf::TermDictionary& dict) {
  BgpQuery out;
  out.set_form(QueryForm::kAsk);
  RDFC_RETURN_NOT_OK(Walk(tokens, dict, &out));
  return out;
}

util::Status ValidateRoundTrip(const BgpQuery& query,
                               rdf::TermDictionary* dict) {
  CanonicalMap canonical(dict);
  RDFC_ASSIGN_OR_RETURN(SerialisedQuery serialised,
                        SerialiseQuery(query, dict, &canonical));
  RDFC_RETURN_NOT_OK(ValidateSerialisation(serialised.tokens, *dict));
  RDFC_ASSIGN_OR_RETURN(BgpQuery reparsed,
                        ParseSerialisation(serialised.tokens, *dict));

  // The reconstruction lives in canonical variable space; rename the original
  // through the same CanonicalMap the serialisation used and compare pattern
  // sets.  (Predicates are constants here, SerialiseQuery already rejected
  // variable predicates.)
  BgpQuery expected;
  expected.set_form(QueryForm::kAsk);
  for (const rdf::Triple& t : query.patterns()) {
    expected.AddPattern(canonical.Canonicalise(t.s), t.p,
                        canonical.Canonicalise(t.o));
  }
  if (!expected.SamePatterns(reparsed)) {
    return util::Status::Internal(
        "serialisation round-trip mismatch:\noriginal (canonicalised):\n" +
        expected.ToString(*dict) + "reparsed:\n" + reparsed.ToString(*dict));
  }
  return util::Status::OK();
}

}  // namespace query
}  // namespace rdfc
