#include "query/witness.h"

#include <unordered_set>

#include "util/union_find.h"

namespace rdfc {
namespace query {

namespace {

struct U64Hash {
  std::size_t operator()(std::uint64_t v) const {
    v ^= v >> 33;
    v *= 0xFF51AFD7ED558CCDull;
    v ^= v >> 33;
    return static_cast<std::size_t>(v);
  }
};

}  // namespace

Witness BuildWitness(const BgpQuery& query) {
  Witness out;
  const std::vector<rdf::TermId> vertices = query.Vertices();
  std::unordered_map<rdf::TermId, std::uint32_t> index_of;
  index_of.reserve(vertices.size());
  for (std::uint32_t i = 0; i < vertices.size(); ++i) index_of[vertices[i]] = i;

  util::UnionFind uf(vertices.size());

  // Fix-point congruence closure: condition (i) forces all objects of a
  // (subject-class, predicate) pair into one class; condition (ii) the dual.
  bool changed = true;
  while (changed) {
    changed = false;
    std::unordered_map<std::uint64_t, std::uint32_t, U64Hash> sp_to_o;
    std::unordered_map<std::uint64_t, std::uint32_t, U64Hash> po_to_s;
    sp_to_o.reserve(query.size() * 2);
    po_to_s.reserve(query.size() * 2);
    for (const rdf::Triple& t : query.patterns()) {
      const std::uint32_t rs = uf.Find(index_of[t.s]);
      const std::uint32_t ro = uf.Find(index_of[t.o]);
      const std::uint64_t sp_key =
          (static_cast<std::uint64_t>(rs) << 32) | t.p;
      auto [it1, fresh1] = sp_to_o.emplace(sp_key, ro);
      if (!fresh1 && uf.Find(it1->second) != uf.Find(ro)) {
        uf.Union(it1->second, ro);
        changed = true;
      }
      const std::uint64_t po_key =
          (static_cast<std::uint64_t>(t.p) << 32) | uf.Find(ro);
      auto [it2, fresh2] = po_to_s.emplace(po_key, rs);
      if (!fresh2 && uf.Find(it2->second) != uf.Find(rs)) {
        uf.Union(it2->second, rs);
        changed = true;
      }
    }
  }

  // Densify class ids in first-appearance order of their representatives.
  std::unordered_map<std::uint32_t, std::uint32_t> dense;
  for (std::uint32_t i = 0; i < vertices.size(); ++i) {
    const std::uint32_t root = uf.Find(i);
    auto [it, fresh] = dense.emplace(root, out.num_classes);
    if (fresh) {
      ++out.num_classes;
      out.class_members.emplace_back();
    }
    out.class_members[it->second].push_back(vertices[i]);
    out.class_of_term[vertices[i]] = it->second;
  }

  // Witness triples, deduplicated (equality on the full (s, p, o) identity).
  struct WTripleHash {
    std::size_t operator()(const Witness::WTriple& t) const {
      std::uint64_t h = t.s;
      h = h * 0x9E3779B97F4A7C15ull + t.p;
      h = h * 0x9E3779B97F4A7C15ull + t.o;
      h ^= h >> 29;
      return static_cast<std::size_t>(h);
    }
  };
  std::unordered_set<Witness::WTriple, WTripleHash> seen;
  for (const rdf::Triple& t : query.patterns()) {
    Witness::WTriple wt{out.class_of_term[t.s], t.p, out.class_of_term[t.o]};
    if (seen.insert(wt).second) out.triples.push_back(wt);
  }

  // Saturating ND-degree.
  out.nd_degree = 1;
  for (const auto& members : out.class_members) {
    const auto size = static_cast<std::uint64_t>(members.size());
    if (size == 0) continue;
    if (out.nd_degree > UINT64_MAX / size) {
      out.nd_degree = UINT64_MAX;
      break;
    }
    out.nd_degree *= size;
  }
  return out;
}

std::uint64_t NdDegree(const BgpQuery& query) {
  return BuildWitness(query).nd_degree;
}

std::string Witness::ToString(const rdf::TermDictionary& dict) const {
  std::string out = "witness(" + std::to_string(num_classes) + " classes, nd=" +
                    std::to_string(nd_degree) + ")\n";
  for (std::uint32_t c = 0; c < num_classes; ++c) {
    out += "  [" + std::to_string(c) + "] = {";
    for (std::size_t i = 0; i < class_members[c].size(); ++i) {
      if (i) out += ", ";
      out += dict.ToString(class_members[c][i]);
    }
    out += "}\n";
  }
  for (const WTriple& t : triples) {
    out += "  (" + std::to_string(t.s) + ", " + dict.ToString(t.p) + ", " +
           std::to_string(t.o) + ")\n";
  }
  return out;
}

}  // namespace query
}  // namespace rdfc
