#include "query/bgp_query.h"

#include <algorithm>

namespace rdfc {
namespace query {

bool BgpQuery::AddPattern(const rdf::Triple& pattern) {
  if (!pattern_set_.insert(pattern).second) return false;
  patterns_.push_back(pattern);
  return true;
}

void BgpQuery::AddDistinguished(rdf::TermId var) {
  if (std::find(distinguished_.begin(), distinguished_.end(), var) ==
      distinguished_.end()) {
    distinguished_.push_back(var);
  }
}

std::vector<rdf::TermId> BgpQuery::Vertices() const {
  std::vector<rdf::TermId> out;
  std::unordered_set<rdf::TermId> seen;
  for (const rdf::Triple& t : patterns_) {
    if (seen.insert(t.s).second) out.push_back(t.s);
    if (seen.insert(t.o).second) out.push_back(t.o);
  }
  return out;
}

std::vector<rdf::TermId> BgpQuery::Variables(
    const rdf::TermDictionary& dict) const {
  std::vector<rdf::TermId> out;
  std::unordered_set<rdf::TermId> seen;
  auto consider = [&](rdf::TermId t) {
    if (dict.IsVariable(t) && seen.insert(t).second) out.push_back(t);
  };
  for (const rdf::Triple& t : patterns_) {
    consider(t.s);
    consider(t.p);
    consider(t.o);
  }
  return out;
}

bool BgpQuery::SamePatterns(const BgpQuery& other) const {
  if (form_ != other.form_) return false;
  if (patterns_.size() != other.patterns_.size()) return false;
  for (const rdf::Triple& t : patterns_) {
    if (!other.ContainsPattern(t)) return false;
  }
  return true;
}

std::string BgpQuery::ToString(const rdf::TermDictionary& dict) const {
  std::string out = form_ == QueryForm::kAsk ? "ASK {\n" : "SELECT {\n";
  for (const rdf::Triple& t : patterns_) {
    out += "  " + dict.ToString(t.s) + " " + dict.ToString(t.p) + " " +
           dict.ToString(t.o) + " .\n";
  }
  out += "}";
  return out;
}

}  // namespace query
}  // namespace rdfc
