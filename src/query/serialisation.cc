#include "query/serialisation.h"

#include <algorithm>

#include "query/analysis.h"

namespace rdfc {
namespace query {

namespace {

struct EdgeRef {
  std::uint32_t pattern_idx;
  bool inverse;        // true: the triple is (other, pred, v)
  rdf::TermId pred;
  rdf::TermId other;
};

/// Total order on tokens used (a) to order sibling pairs in the serialised
/// form (optimisation I) and (b) to order components deterministically.
bool TokenLess(const Token& a, const Token& b) {
  if (a.type != b.type) return a.type < b.type;
  if (a.pred != b.pred) return a.pred < b.pred;
  if (a.inverse != b.inverse) return !a.inverse;  // forward before inverse
  return a.term < b.term;
}

bool TokenStreamLess(const std::vector<Token>& a, const std::vector<Token>& b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end(),
                                      TokenLess);
}

class ComponentSerialiser {
 public:
  ComponentSerialiser(const BgpQuery& component, rdf::TermDictionary* dict)
      : component_(component), dict_(dict) {}

  void Run(rdf::TermId anchor, std::vector<Token>* out) {
    BuildAdjacency();
    out_ = out;
    // Emission bound, known up front: one anchor, one pair per pattern, and
    // at most one Open/Close bracket pair per visited vertex (<= patterns+1).
    // This path is hot — every insert and every probe preparation runs it —
    // so reserve once instead of growing through the DFS below.
    out_->reserve(out_->size() + 3 * component_.size() + 3);
    emitted_.assign(component_.size(), false);
    visited_.clear();
    visited_.insert(anchor);
    out_->push_back(Token::Anchor(anchor));
    Visit(anchor);
  }

 private:
  void BuildAdjacency() {
    const auto& patterns = component_.patterns();
    for (std::uint32_t i = 0; i < patterns.size(); ++i) {
      const rdf::Triple& t = patterns[i];
      adjacency_[t.s].push_back(EdgeRef{i, false, t.p, t.o});
      if (t.o != t.s) {
        adjacency_[t.o].push_back(EdgeRef{i, true, t.p, t.s});
      }
    }
    // Optimisation I: impose a total order on ⟨r, o⟩ pairs — predicate first,
    // forward before inverse, constant targets before variables (constants
    // prune index probes earlier), then constant id, then input order.
    for (auto& [vertex, edges] : adjacency_) {
      (void)vertex;
      std::sort(edges.begin(), edges.end(),
                [this](const EdgeRef& a, const EdgeRef& b) {
                  if (a.pred != b.pred) return a.pred < b.pred;
                  if (a.inverse != b.inverse) return !a.inverse;
                  const bool ac = dict_->IsConstant(a.other);
                  const bool bc = dict_->IsConstant(b.other);
                  if (ac != bc) return ac;
                  if (ac && a.other != b.other) return a.other < b.other;
                  return a.pattern_idx < b.pattern_idx;
                });
    }
  }

  void Visit(rdf::TermId v) {
    auto it = adjacency_.find(v);
    if (it == adjacency_.end()) return;
    // Anything already emitted by a deeper recursive call is skipped; the
    // check must be re-evaluated per edge, not precomputed, because the
    // recursion below can consume later edges of this very vertex.
    bool any_left = false;
    for (const EdgeRef& e : it->second) {
      if (!emitted_[e.pattern_idx]) {
        any_left = true;
        break;
      }
    }
    if (!any_left) return;

    out_->push_back(Token::Open());
    for (const EdgeRef& e : it->second) {
      if (emitted_[e.pattern_idx]) continue;
      emitted_[e.pattern_idx] = true;
      out_->push_back(Token::Pair(e.pred, e.other, e.inverse));
      if (visited_.insert(e.other).second) {
        Visit(e.other);
      }
      // An already-visited target is a cycle-closing edge: the pair alone
      // encodes the constraint (DESIGN.md, deviation 1).
    }
    out_->push_back(Token::Close());
  }

  const BgpQuery& component_;
  rdf::TermDictionary* dict_;
  std::vector<Token>* out_ = nullptr;
  std::unordered_map<rdf::TermId, std::vector<EdgeRef>> adjacency_;
  std::vector<bool> emitted_;
  std::unordered_set<rdf::TermId> visited_;
};

}  // namespace

rdf::TermId CanonicalMap::Canonicalise(rdf::TermId term) {
  // Blank nodes in query patterns are existential variables (SPARQL
  // semantics) and MUST be canonicalised like variables: the index walk
  // enumerates candidate tokens over canonical variables and constants only,
  // so an un-canonicalised blank token could never be matched.
  if (!dict_->IsVariable(term) && !dict_->IsBlank(term)) return term;
  auto it = canon_of_.find(term);
  if (it != canon_of_.end()) return it->second;
  const auto k = static_cast<std::uint32_t>(original_of_.size()) + 1;
  const rdf::TermId canon = dict_->CanonicalVariable(k);
  canon_of_.emplace(term, canon);
  original_of_.emplace(canon, term);
  return canon;
}

rdf::TermId CanonicalMap::OriginalOf(rdf::TermId canonical_var) const {
  auto it = original_of_.find(canonical_var);
  return it == original_of_.end() ? rdf::kNullTerm : it->second;
}

rdf::TermId ChooseAnchor(const BgpQuery& component) {
  struct Candidate {
    rdf::TermId term = rdf::kNullTerm;
    std::size_t degree = 0;
    std::vector<std::uint64_t> signature;  // sorted (pred, dir) keys
  };
  std::unordered_map<rdf::TermId, Candidate> candidates;
  auto touch = [&](rdf::TermId v, rdf::TermId pred, bool inverse) {
    Candidate& c = candidates[v];
    c.term = v;
    ++c.degree;
    c.signature.push_back((static_cast<std::uint64_t>(pred) << 1) |
                          (inverse ? 1u : 0u));
  };
  for (const rdf::Triple& t : component.patterns()) {
    touch(t.s, t.p, false);
    touch(t.o, t.p, true);
  }
  Candidate best;
  for (auto& [term, c] : candidates) {
    (void)term;
    std::sort(c.signature.begin(), c.signature.end());
    if (best.term == rdf::kNullTerm) {
      best = c;
      continue;
    }
    if (c.degree != best.degree) {
      if (c.degree > best.degree) best = c;
      continue;
    }
    if (c.signature != best.signature) {
      if (c.signature < best.signature) best = c;
      continue;
    }
    if (c.term < best.term) best = c;
  }
  return best.term;
}

util::Status SerialiseComponent(const BgpQuery& component,
                                rdf::TermDictionary* dict, rdf::TermId anchor,
                                CanonicalMap* canonical,
                                std::vector<Token>* out) {
  if (component.empty()) {
    return util::Status::InvalidArgument("cannot serialise an empty component");
  }
  std::vector<Token> raw;
  ComponentSerialiser serialiser(component, dict);
  serialiser.Run(anchor, &raw);
  out->reserve(out->size() + raw.size());
  for (Token& tok : raw) {
    if ((tok.type == TokenType::kAnchor || tok.type == TokenType::kPair) &&
        canonical != nullptr) {
      tok.term = canonical->Canonicalise(tok.term);
    }
    out->push_back(tok);
  }
  return util::Status::OK();
}

util::Result<SerialisedQuery> SerialiseQuery(const BgpQuery& query,
                                             rdf::TermDictionary* dict,
                                             CanonicalMap* canonical) {
  if (query.empty()) {
    return util::Status::InvalidArgument("cannot serialise an empty query");
  }
  for (const rdf::Triple& t : query.patterns()) {
    if (dict->IsVariable(t.p)) {
      return util::Status::InvalidArgument(
          "variable predicates must be stripped before serialisation "
          "(Section 5.2)");
    }
  }
  std::vector<BgpQuery> components = SplitComponents(query, *dict);

  // Serialise each component with original variable names, order the
  // component streams deterministically, then canonicalise variables across
  // the concatenated stream so `?x1` is the first variable of the first
  // component (optimisation II).  Note: the per-component ordering uses raw
  // term ids, so isomorphic multi-component queries with different raw ids
  // may order differently — multi-component queries only arise via
  // Section 5.2 and never dedup across workloads anyway.
  std::vector<std::vector<Token>> streams;
  streams.reserve(components.size());
  for (const BgpQuery& component : components) {
    std::vector<Token> raw;
    const rdf::TermId anchor = ChooseAnchor(component);
    ComponentSerialiser serialiser(component, dict);
    serialiser.Run(anchor, &raw);
    streams.push_back(std::move(raw));
  }
  std::sort(streams.begin(), streams.end(), TokenStreamLess);

  SerialisedQuery out;
  out.num_components = static_cast<std::uint32_t>(streams.size());
  std::size_t total_tokens = streams.size();  // separators upper bound
  for (const std::vector<Token>& stream : streams) {
    total_tokens += stream.size();
  }
  out.tokens.reserve(total_tokens);
  for (std::size_t i = 0; i < streams.size(); ++i) {
    if (i > 0) out.tokens.push_back(Token::Separator());
    for (Token& tok : streams[i]) {
      if (tok.type == TokenType::kAnchor || tok.type == TokenType::kPair) {
        if (canonical != nullptr) tok.term = canonical->Canonicalise(tok.term);
      }
      out.tokens.push_back(tok);
    }
  }
  return out;
}

std::string TokensToString(const std::vector<Token>& tokens,
                           const rdf::TermDictionary& dict) {
  std::string out;
  for (const Token& tok : tokens) {
    if (!out.empty()) out += ' ';
    switch (tok.type) {
      case TokenType::kAnchor:
        out += dict.ToString(tok.term);
        break;
      case TokenType::kPair:
        out += "<" + dict.lexical(tok.pred) + (tok.inverse ? ">⁻¹:" : ">:") +
               dict.ToString(tok.term);
        break;
      case TokenType::kOpen:
        out += "(";
        break;
      case TokenType::kClose:
        out += ")";
        break;
      case TokenType::kSeparator:
        out += "||";
        break;
    }
  }
  return out;
}

}  // namespace query
}  // namespace rdfc
