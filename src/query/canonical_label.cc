#include "query/canonical_label.h"

#include <algorithm>
#include <array>
#include <map>
#include <unordered_map>

namespace rdfc {
namespace query {

namespace {

constexpr std::uint64_t kConstTag = 0x1000000000000000ull;
constexpr std::uint64_t kVarTag = 0x2000000000000000ull;

class Labeller {
 public:
  Labeller(const BgpQuery& q, rdf::TermDictionary* dict)
      : q_(q), dict_(dict) {
    for (const rdf::Triple& t : q_.patterns()) {
      for (rdf::TermId term : {t.s, t.p, t.o}) {
        if (dict_->IsVariable(term) || dict_->IsBlank(term)) {
          if (!var_index_.count(term)) {
            var_index_.emplace(term, static_cast<std::uint32_t>(vars_.size()));
            vars_.push_back(term);
          }
        }
      }
    }
  }

  CanonicalForm Run() {
    CanonicalForm form;
    std::vector<std::uint32_t> colours(vars_.size(), 0);
    Refine(&colours);
    Search(colours);

    // Materialise the best ranking as canonical variables.
    std::unordered_map<rdf::TermId, rdf::TermId> rename;
    for (std::uint32_t i = 0; i < vars_.size(); ++i) {
      rename.emplace(vars_[i], dict_->CanonicalVariable(best_rank_[i] + 1));
    }
    std::vector<std::vector<std::uint64_t>> coded;
    for (const rdf::Triple& t : q_.patterns()) {
      coded.push_back(EncodeTriple(t, best_rank_));
    }
    std::vector<std::size_t> order(coded.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return coded[a] < coded[b];
    });
    for (std::size_t i : order) {
      const rdf::Triple& t = q_.patterns()[i];
      auto rn = [&](rdf::TermId term) {
        auto it = rename.find(term);
        return it == rename.end() ? term : it->second;
      };
      form.triples.push_back(rdf::Triple(rn(t.s), rn(t.p), rn(t.o)));
    }
    // FNV digest over the rank-encoded (dictionary-order-independent) code.
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (std::size_t i : order) {
      for (std::uint64_t v : coded[i]) {
        h ^= v;
        h *= 0x100000001B3ull;
      }
    }
    form.hash = h;
    return form;
  }

 private:
  std::uint64_t SlotColour(rdf::TermId term,
                           const std::vector<std::uint32_t>& colours) const {
    auto it = var_index_.find(term);
    if (it == var_index_.end()) return kConstTag | term;
    return kVarTag | colours[it->second];
  }

  /// Colour refinement (1-WL): a variable's new colour is determined by its
  /// old colour plus the sorted multiset of its occurrence signatures.
  /// New colours are dense ids assigned from the *full* signature, so no
  /// hash collision can merge distinct classes.
  void Refine(std::vector<std::uint32_t>* colours) const {
    std::size_t distinct = CountDistinct(*colours);
    using Occurrence = std::array<std::uint64_t, 3>;  // (role, other, other)
    while (true) {
      std::vector<std::vector<Occurrence>> occurrences(vars_.size());
      for (const rdf::Triple& t : q_.patterns()) {
        const std::uint64_t cs = SlotColour(t.s, *colours);
        const std::uint64_t cp = SlotColour(t.p, *colours);
        const std::uint64_t co = SlotColour(t.o, *colours);
        auto add = [&](rdf::TermId term, std::uint64_t role,
                       std::uint64_t a, std::uint64_t b) {
          auto it = var_index_.find(term);
          if (it == var_index_.end()) return;
          occurrences[it->second].push_back(Occurrence{role, a, b});
        };
        add(t.s, 1, cp, co);
        add(t.p, 2, cs, co);
        add(t.o, 3, cs, cp);
      }
      // Full (collision-free) signature: old colour + sorted occurrence
      // multiset, flattened.  New colour ids are assigned by SIGNATURE sort
      // order (not encounter order), which keeps colour values — and hence
      // the final ranking — isomorphism-invariant: old colours are invariant
      // by induction (round 0 is all-zero) and occurrence blocks only
      // reference invariant colours and constant ids.
      std::map<std::vector<std::uint64_t>, std::uint32_t> dense;
      std::vector<std::vector<std::uint64_t>> signature_of(vars_.size());
      for (std::uint32_t i = 0; i < vars_.size(); ++i) {
        std::sort(occurrences[i].begin(), occurrences[i].end());
        std::vector<std::uint64_t>& signature = signature_of[i];
        signature.reserve(1 + occurrences[i].size() * 3);
        signature.push_back((*colours)[i]);
        for (const Occurrence& occ : occurrences[i]) {
          signature.insert(signature.end(), occ.begin(), occ.end());
        }
        dense.emplace(signature, 0);
      }
      std::uint32_t id = 0;
      for (auto& [signature, colour] : dense) {
        (void)signature;
        colour = id++;
      }
      std::vector<std::uint32_t> next(vars_.size());
      for (std::uint32_t i = 0; i < vars_.size(); ++i) {
        next[i] = dense[signature_of[i]];
      }
      const std::size_t next_distinct = dense.size();
      *colours = std::move(next);
      if (next_distinct == distinct) return;  // stable partition
      distinct = next_distinct;
    }
  }

  static std::size_t CountDistinct(const std::vector<std::uint32_t>& colours) {
    std::vector<std::uint32_t> sorted = colours;
    std::sort(sorted.begin(), sorted.end());
    return static_cast<std::size_t>(
        std::unique(sorted.begin(), sorted.end()) - sorted.begin());
  }

  /// Ranks variables by colour; requires a discrete partition.
  std::vector<std::uint32_t> RanksFromColours(
      const std::vector<std::uint32_t>& colours) const {
    std::vector<std::uint32_t> order(vars_.size());
    for (std::uint32_t i = 0; i < vars_.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
      return colours[a] < colours[b];
    });
    std::vector<std::uint32_t> rank(vars_.size());
    for (std::uint32_t r = 0; r < order.size(); ++r) rank[order[r]] = r;
    return rank;
  }

  std::vector<std::uint64_t> EncodeTriple(
      const rdf::Triple& t, const std::vector<std::uint32_t>& rank) const {
    auto code = [&](rdf::TermId term) -> std::uint64_t {
      auto it = var_index_.find(term);
      if (it == var_index_.end()) return kConstTag | term;
      return kVarTag | rank[it->second];
    };
    return {code(t.s), code(t.p), code(t.o)};
  }

  /// The full code of the query under a ranking: sorted triple codes.
  std::vector<std::uint64_t> QueryCode(
      const std::vector<std::uint32_t>& rank) const {
    std::vector<std::vector<std::uint64_t>> coded;
    for (const rdf::Triple& t : q_.patterns()) {
      coded.push_back(EncodeTriple(t, rank));
    }
    std::sort(coded.begin(), coded.end());
    std::vector<std::uint64_t> flat;
    for (const auto& c : coded) flat.insert(flat.end(), c.begin(), c.end());
    return flat;
  }

  /// Individualisation-refinement: branch over the members of the smallest
  /// non-singleton colour class, keep the lexicographically smallest code.
  void Search(std::vector<std::uint32_t> colours) {
    // Find the smallest non-singleton class (by colour value for
    // determinism).
    std::map<std::uint32_t, std::vector<std::uint32_t>> classes;
    for (std::uint32_t i = 0; i < vars_.size(); ++i) {
      classes[colours[i]].push_back(i);
    }
    const std::vector<std::uint32_t>* target = nullptr;
    for (const auto& [colour, members] : classes) {
      (void)colour;
      if (members.size() > 1 &&
          (target == nullptr || members.size() < target->size())) {
        target = &members;
      }
    }
    if (target == nullptr) {
      // Discrete: evaluate this candidate.
      ++leaves_;
      const std::vector<std::uint32_t> rank = RanksFromColours(colours);
      std::vector<std::uint64_t> code = QueryCode(rank);
      if (best_code_.empty() || code < best_code_) {
        best_code_ = std::move(code);
        best_rank_ = rank;
      }
      return;
    }
    const std::vector<std::uint32_t> members = *target;  // copy: classes dies
    for (std::uint32_t member : members) {
      // Branching cap: a large symmetric class (e.g. a k-arm same-predicate
      // star) would otherwise explore k! leaves.  Past the cap the result is
      // still deterministic for a given pattern set but only *best-effort*
      // canonical: isomorphic inputs may fail to share a form, which costs a
      // missed dedup / a false-negative AreIsomorphic — never a false
      // positive and never a containment error.  Real query workloads stay
      // far below the cap (a class of 7 fully symmetric variables already
      // needs 5040 leaves).
      if (leaves_ >= kMaxLeaves) return;
      std::vector<std::uint32_t> branched = colours;
      // Individualise: give `member` a colour below every existing one.
      for (std::uint32_t& c : branched) ++c;
      branched[member] = 0;
      Refine(&branched);
      Search(std::move(branched));
    }
  }

  static constexpr std::size_t kMaxLeaves = 4096;
  std::size_t leaves_ = 0;

  const BgpQuery& q_;
  rdf::TermDictionary* dict_;
  std::vector<rdf::TermId> vars_;
  std::unordered_map<rdf::TermId, std::uint32_t> var_index_;
  std::vector<std::uint64_t> best_code_;
  std::vector<std::uint32_t> best_rank_;
};

}  // namespace

CanonicalForm CanonicalLabel(const BgpQuery& q, rdf::TermDictionary* dict) {
  Labeller labeller(q, dict);
  return labeller.Run();
}

bool AreIsomorphic(const BgpQuery& a, const BgpQuery& b,
                   rdf::TermDictionary* dict) {
  if (a.size() != b.size()) return false;
  return CanonicalLabel(a, dict) == CanonicalLabel(b, dict);
}

}  // namespace query
}  // namespace rdfc
