#pragma once

#include <cstdint>
#include <vector>

#include "query/bgp_query.h"
#include "rdf/dictionary.h"

namespace rdfc {
namespace query {

/// Structural facts about a BGP query that drive the containment machinery
/// and the workload statistics of the paper's evaluation (Sections 3 and 7).
struct QueryShape {
  /// Paper Section 3.1 conditions: no two patterns (s,p,o1),(s,p,o2) with
  /// o1 != o2 and no two patterns (s1,p,o),(s2,p,o) with s1 != s2.
  bool is_fgraph = false;
  /// True when the undirected query multigraph has no cycle (parallel edges
  /// between the same two vertices and self-loops count as cycles).
  bool is_acyclic = false;
  /// True when every predicate position holds an IRI — the precondition for
  /// the right-hand side of the PTime containment of Section 3.
  bool only_iri_predicates = false;
  /// True when at least one predicate position holds a variable.
  bool has_var_predicates = false;
  /// Connected components of the query graph *ignoring* triple patterns with
  /// variable predicates never splits here; this counts components of the
  /// full graph (predicates connect s and o regardless of their kind).
  std::uint32_t num_components = 0;
  std::uint32_t num_vertices = 0;
  std::uint32_t num_triples = 0;
};

/// Computes all structural facts in one pass (O(|Q| log |Q|)).
QueryShape AnalyzeShape(const BgpQuery& query, const rdf::TermDictionary& dict);

/// True iff the query satisfies the f-graph conditions of Section 3.1.
bool IsFGraph(const BgpQuery& query);

/// True iff the undirected query multigraph is acyclic.
bool IsAcyclic(const BgpQuery& query);

/// Component id per vertex (indexed like BgpQuery::Vertices()), plus count.
struct ComponentAssignment {
  std::vector<rdf::TermId> vertices;        // from BgpQuery::Vertices()
  std::vector<std::uint32_t> component_of;  // parallel to `vertices`
  std::uint32_t num_components = 0;
};

/// Connected components of the query graph where each triple pattern links
/// its subject and object vertex.  `exclude_var_predicates` drops patterns
/// whose predicate is a variable first — the decomposition of Section 5.2.
ComponentAssignment ConnectedComponents(const BgpQuery& query,
                                        const rdf::TermDictionary& dict,
                                        bool exclude_var_predicates = false);

/// Splits a query into one BgpQuery per connected component (patterns with
/// variable predicates excluded when `exclude_var_predicates`).  Patterns
/// keep their original term ids.  Var-predicate patterns, when excluded, are
/// returned through `var_pred_patterns` if non-null.
std::vector<BgpQuery> SplitComponents(
    const BgpQuery& query, const rdf::TermDictionary& dict,
    bool exclude_var_predicates = false,
    std::vector<rdf::Triple>* var_pred_patterns = nullptr);

/// Structural signature of the query's serialisation anchor: an order- and
/// dictionary-independent hash over the (predicate, direction) set of the
/// edges incident on the deterministic anchor (query::ChooseAnchor), with
/// the anchor's class set (objects of rdf:type edges) mixed in — exactly the
/// information the first serialisation tokens dispatch on at the index root.
///
/// Two probes with equal signatures start their radix walk through the same
/// root dispatch region, which is what makes the signature the batching key
/// of the network front end (requests sharing it are admitted as one group
/// pinning one snapshot) and the partitioning key of the planned sharded
/// index.  Predicates and classes hash by lexical form, so signatures agree
/// across dictionaries; variable predicates/classes fold in a fixed marker.
/// Returns 0 for the empty query.
std::uint64_t AnchorSignature(const BgpQuery& query,
                              const rdf::TermDictionary& dict);

}  // namespace query
}  // namespace rdfc
