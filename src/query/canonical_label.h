#pragma once

#include <cstdint>
#include <vector>

#include "query/bgp_query.h"
#include "rdf/dictionary.h"

namespace rdfc {
namespace query {

/// A canonical form of a BGP query under variable renaming: the pattern set
/// with variables renamed to canonical `?x1..?xk` such that any two
/// isomorphic queries (equal up to a bijective variable renaming) produce
/// the *same* form, and non-isomorphic queries produce different forms.
///
/// This is stronger than the serialisation-based canonicalisation the
/// mv-index uses for dedup: serialisation breaks anchor/sibling ties by raw
/// term ids, so isomorphic queries interned in different orders can —
/// rarely — serialise differently.  Canonical labelling closes that gap
/// (the canonical-labelling strategy of the SPARQL caches in the paper's
/// related work [56]); tests/query/canonical_label_test.cc verifies the
/// iso-invariance property against explicit permutation oracles.
struct CanonicalForm {
  /// Patterns with variables canonically renamed, sorted lexicographically.
  std::vector<rdf::Triple> triples;
  /// Order-independent 64-bit digest of `triples` (fast inequality test).
  std::uint64_t hash = 0;

  bool operator==(const CanonicalForm& other) const {
    return hash == other.hash && triples == other.triples;
  }
};

/// Computes the canonical form via colour refinement (1-WL over the
/// occurrence structure) with individualisation-refinement branching on
/// ties.  Exponential only on highly symmetric queries, which real
/// workloads do not contain; cost is O(k · |Q| log |Q|) refinement passes
/// otherwise.  Variables in predicate position participate fully.
CanonicalForm CanonicalLabel(const BgpQuery& q, rdf::TermDictionary* dict);

/// True iff the two queries are equal up to a bijective variable renaming.
bool AreIsomorphic(const BgpQuery& a, const BgpQuery& b,
                   rdf::TermDictionary* dict);

}  // namespace query
}  // namespace rdfc
