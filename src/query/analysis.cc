#include "query/analysis.h"

#include <algorithm>
#include <string_view>
#include <unordered_map>

#include "query/serialisation.h"
#include "util/union_find.h"

namespace rdfc {
namespace query {

namespace {

std::uint64_t PairKey(rdf::TermId a, rdf::TermId b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

}  // namespace

bool IsFGraph(const BgpQuery& query) {
  // Condition (i): at most one object per (subject, predicate).
  // Condition (ii): at most one subject per (predicate, object).
  std::unordered_map<std::uint64_t, rdf::TermId> sp_to_o;
  std::unordered_map<std::uint64_t, rdf::TermId> po_to_s;
  for (const rdf::Triple& t : query.patterns()) {
    auto [it1, fresh1] = sp_to_o.emplace(PairKey(t.s, t.p), t.o);
    if (!fresh1 && it1->second != t.o) return false;
    auto [it2, fresh2] = po_to_s.emplace(PairKey(t.p, t.o), t.s);
    if (!fresh2 && it2->second != t.s) return false;
  }
  return true;
}

bool IsAcyclic(const BgpQuery& query) {
  const std::vector<rdf::TermId> vertices = query.Vertices();
  std::unordered_map<rdf::TermId, std::uint32_t> index_of;
  index_of.reserve(vertices.size());
  for (std::uint32_t i = 0; i < vertices.size(); ++i) index_of[vertices[i]] = i;

  util::UnionFind uf(vertices.size());
  for (const rdf::Triple& t : query.patterns()) {
    if (t.s == t.o) return false;  // self-loop
    const std::uint32_t a = index_of[t.s];
    const std::uint32_t b = index_of[t.o];
    if (uf.Same(a, b)) return false;  // closes a cycle (incl. parallel edges)
    uf.Union(a, b);
  }
  return true;
}

ComponentAssignment ConnectedComponents(const BgpQuery& query,
                                        const rdf::TermDictionary& dict,
                                        bool exclude_var_predicates) {
  ComponentAssignment out;
  out.vertices = query.Vertices();
  std::unordered_map<rdf::TermId, std::uint32_t> index_of;
  index_of.reserve(out.vertices.size());
  for (std::uint32_t i = 0; i < out.vertices.size(); ++i) {
    index_of[out.vertices[i]] = i;
  }

  util::UnionFind uf(out.vertices.size());
  for (const rdf::Triple& t : query.patterns()) {
    if (exclude_var_predicates && dict.IsVariable(t.p)) continue;
    uf.Union(index_of[t.s], index_of[t.o]);
  }

  // Densify component ids in first-appearance order.
  std::unordered_map<std::uint32_t, std::uint32_t> dense;
  out.component_of.resize(out.vertices.size());
  for (std::uint32_t i = 0; i < out.vertices.size(); ++i) {
    const std::uint32_t root = uf.Find(i);
    auto [it, fresh] = dense.emplace(root, out.num_components);
    if (fresh) ++out.num_components;
    out.component_of[i] = it->second;
  }
  return out;
}

std::vector<BgpQuery> SplitComponents(
    const BgpQuery& query, const rdf::TermDictionary& dict,
    bool exclude_var_predicates,
    std::vector<rdf::Triple>* var_pred_patterns) {
  const ComponentAssignment assignment =
      ConnectedComponents(query, dict, exclude_var_predicates);
  std::unordered_map<rdf::TermId, std::uint32_t> component_of_term;
  for (std::uint32_t i = 0; i < assignment.vertices.size(); ++i) {
    component_of_term[assignment.vertices[i]] = assignment.component_of[i];
  }

  std::vector<BgpQuery> components(assignment.num_components);
  for (const rdf::Triple& t : query.patterns()) {
    if (exclude_var_predicates && dict.IsVariable(t.p)) {
      if (var_pred_patterns != nullptr) var_pred_patterns->push_back(t);
      continue;
    }
    components[component_of_term[t.s]].AddPattern(t);
  }
  // With var-predicate patterns excluded, some components can end up empty
  // (a vertex only touched by var-predicate triples); drop those.
  std::vector<BgpQuery> out;
  out.reserve(components.size());
  for (BgpQuery& c : components) {
    if (!c.empty()) out.push_back(std::move(c));
  }
  return out;
}

std::uint64_t AnchorSignature(const BgpQuery& query,
                              const rdf::TermDictionary& dict) {
  if (query.empty()) return 0;
  const rdf::TermId anchor = ChooseAnchor(query);

  constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
  constexpr std::uint64_t kFnvPrime = 1099511628211ull;
  auto fnv = [](std::uint64_t h, std::string_view bytes) {
    for (const char c : bytes) {
      h ^= static_cast<unsigned char>(c);
      h *= kFnvPrime;
    }
    return h;
  };
  // One hash per anchor-incident edge: direction tag, the predicate's
  // lexical form (a fixed marker for variable predicates — they canonicalise
  // away), and for rdf:type edges the class object, so signatures separate
  // by the anchor's class set, not just "has a type edge".
  auto edge_hash = [&](const char* tag, rdf::TermId pred, rdf::TermId other) {
    std::uint64_t h = fnv(kFnvOffset, tag);
    h = dict.IsVariable(pred) ? fnv(h, "?") : fnv(h, dict.lexical(pred));
    if (!dict.IsVariable(pred) &&
        dict.lexical(pred) ==
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type") {
      h = dict.IsConstant(other) ? fnv(h, dict.lexical(other)) : fnv(h, "?");
    }
    return h;
  };

  std::vector<std::uint64_t> edges;
  edges.reserve(query.size());
  for (const rdf::Triple& t : query.patterns()) {
    if (t.s == anchor) edges.push_back(edge_hash("+", t.p, t.o));
    if (t.o == anchor) edges.push_back(edge_hash("-", t.p, t.s));
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  std::uint64_t h = kFnvOffset;
  for (const std::uint64_t e : edges) {
    for (int i = 0; i < 8; ++i) {
      h ^= (e >> (i * 8)) & 0xff;
      h *= kFnvPrime;
    }
  }
  return h == 0 ? 1 : h;  // reserve 0 for "empty query"
}

QueryShape AnalyzeShape(const BgpQuery& query,
                        const rdf::TermDictionary& dict) {
  QueryShape shape;
  shape.is_fgraph = IsFGraph(query);
  shape.is_acyclic = IsAcyclic(query);
  shape.num_triples = static_cast<std::uint32_t>(query.size());

  bool only_iri = true;
  bool has_var = false;
  for (const rdf::Triple& t : query.patterns()) {
    if (dict.IsVariable(t.p)) {
      has_var = true;
      only_iri = false;
    } else if (!dict.IsIri(t.p)) {
      only_iri = false;
    }
  }
  shape.only_iri_predicates = only_iri;
  shape.has_var_predicates = has_var;

  const ComponentAssignment assignment =
      ConnectedComponents(query, dict, /*exclude_var_predicates=*/false);
  shape.num_components = assignment.num_components;
  shape.num_vertices = static_cast<std::uint32_t>(assignment.vertices.size());
  return shape;
}

}  // namespace query
}  // namespace rdfc
