#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/triple.h"

namespace rdfc {
namespace query {

/// SELECT queries project distinguished variables; ASK queries are Boolean.
/// Containment is decided on the Boolean projections (Levy et al.), so most
/// of the library only looks at the triple patterns.
enum class QueryForm : std::uint8_t { kSelect, kAsk };

/// A basic-graph-pattern (conjunctive) query over RDF: a set of triple
/// patterns plus a solution modifier.  Triple patterns are stored in
/// insertion order with set semantics (duplicates are dropped), matching the
/// paper's set-based model.
class BgpQuery {
 public:
  BgpQuery() = default;

  /// Adds a pattern; returns false when it was already present.
  bool AddPattern(const rdf::Triple& pattern);
  bool AddPattern(rdf::TermId s, rdf::TermId p, rdf::TermId o) {
    return AddPattern(rdf::Triple(s, p, o));
  }

  const std::vector<rdf::Triple>& patterns() const { return patterns_; }
  std::size_t size() const { return patterns_.size(); }
  bool empty() const { return patterns_.empty(); }

  bool ContainsPattern(const rdf::Triple& pattern) const {
    return pattern_set_.count(pattern) > 0;
  }

  QueryForm form() const { return form_; }
  void set_form(QueryForm form) { form_ = form; }

  /// SELECT * — all variables are distinguished.
  bool select_all() const { return select_all_; }
  void set_select_all(bool v) { select_all_ = v; }

  void AddDistinguished(rdf::TermId var);
  const std::vector<rdf::TermId>& distinguished() const {
    return distinguished_;
  }

  /// All vertices of the query graph — terms in subject or object position,
  /// deduplicated, in first-appearance order.  Predicates are edge labels,
  /// not vertices (Section 3.2 of the paper).
  std::vector<rdf::TermId> Vertices() const;

  /// All variables occurring anywhere (including predicate position),
  /// deduplicated, in first-appearance order.
  std::vector<rdf::TermId> Variables(const rdf::TermDictionary& dict) const;

  /// Structural equality: same pattern set (order-insensitive) and same form.
  bool SamePatterns(const BgpQuery& other) const;

  /// Debug rendering, one pattern per line.
  std::string ToString(const rdf::TermDictionary& dict) const;

 private:
  std::vector<rdf::Triple> patterns_;
  std::unordered_set<rdf::Triple, rdf::TripleHash> pattern_set_;
  std::vector<rdf::TermId> distinguished_;
  QueryForm form_ = QueryForm::kSelect;
  bool select_all_ = false;
};

}  // namespace query
}  // namespace rdfc
