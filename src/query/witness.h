#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "query/bgp_query.h"
#include "rdf/dictionary.h"

namespace rdfc {
namespace query {

/// The f-graph witness of a BGP query (Section 5.1): vertices of the query
/// are merged into equivalence classes until the f-graph conditions hold.
///
/// The paper defines ∼ by a single scan of violating pattern pairs; as
/// DESIGN.md explains, merging can create new violations among neighbours,
/// so this implementation runs the merge to a fix point (congruence
/// closure).  Every merge it performs is forced: if (s,p,o1),(s,p,o2) are
/// patterns and σ is any containment mapping W→Q, no *f-graph structured*
/// matching can distinguish o1 from o2 — which is exactly why
/// Q ⊑ W ⇒ Q_w ⊑ W (Proposition 5.1) survives the fix point.
struct Witness {
  static constexpr std::uint32_t kInvalidClass = 0xFFFFFFFFu;

  /// Triple over witness classes; the predicate keeps its original term id.
  struct WTriple {
    std::uint32_t s;
    rdf::TermId p;
    std::uint32_t o;
    bool operator==(const WTriple& other) const {
      return s == other.s && p == other.p && o == other.o;
    }
  };

  std::uint32_t num_classes = 0;
  /// Class members, indexed by class id; members are original term ids in
  /// first-appearance order.
  std::vector<std::vector<rdf::TermId>> class_members;
  /// Original vertex term -> class id (covers constants and variables).
  std::unordered_map<rdf::TermId, std::uint32_t> class_of_term;
  /// Deduplicated witness triples.
  std::vector<WTriple> triples;
  /// Π |class| over all classes, saturating at UINT64_MAX (Section 5.1).
  /// 1 iff the source query was already an f-graph on its vertices.
  std::uint64_t nd_degree = 1;

  std::uint32_t ClassOf(rdf::TermId term) const {
    auto it = class_of_term.find(term);
    return it == class_of_term.end() ? kInvalidClass : it->second;
  }

  std::string ToString(const rdf::TermDictionary& dict) const;
};

/// Builds the f-graph witness of `query`.  Works for any BGP query,
/// including variable predicates (the predicate term participates in the
/// conditions as a label, exactly as in the definition).
Witness BuildWitness(const BgpQuery& query);

/// The ND-degree of a query (Section 5.1): the product of the equivalence
/// class sizes of its witness; 1 for f-graph queries.  Computable in linear
/// time, unlike query width (see Related Work).
std::uint64_t NdDegree(const BgpQuery& query);

}  // namespace query
}  // namespace rdfc
